//! `obs` — zero-dependency structured telemetry for the checker pipeline.
//!
//! ParaCrash pinpoints *where* in the I/O stack a crash vulnerability
//! arises; this module does the same for the checker itself. It provides,
//! on `std` alone (the workspace is hermetic — no registry deps):
//!
//! * **spans** — [`span`] returns a guard that records a named interval
//!   with monotonic start/duration, the recording thread, and its nesting
//!   depth (a thread-local stack tracks parents);
//! * **counters / gauges / histograms** — [`count`] accumulates,
//!   [`gauge_max`] keeps a high-water mark, [`observe_ns`] feeds a
//!   log₂-bucketed latency histogram with approximate quantiles;
//! * **a per-run registry** — everything lands in one process-global
//!   `Registry`; [`mark`] + [`render_summary`] slice out a window (one
//!   `check_stack` call) for the human-readable `PC_TRACE=summary` table,
//!   [`snapshot`] exports the whole run for the machine-readable writers
//!   (`paracrash::telemetry` serializes it as plain JSON and as Chrome
//!   trace-event JSON loadable in Perfetto);
//! * **a leveled logger** — the [`crate::pc_error!`], [`crate::pc_warn!`],
//!   [`crate::pc_info!`] and [`crate::pc_debug!`] macros replace the
//!   scattered `eprintln!`s. `PC_LOG=warn|info|debug` raises verbosity;
//!   the default threshold is `error`, so everything below stays silent;
//! * **a streaming plane** — [`stream`] is a bounded flight recorder of
//!   structured events (span open/close, counter deltas, findings, cell
//!   completions) with a JSON-lines sink (`PC_EVENTS=path`) and a
//!   panic-flush crash-dump hook, for watching a campaign live instead
//!   of waiting for the exit snapshot;
//! * **causal trace ids** — [`set_trace_id`] / [`current_trace_id`]
//!   carry one ambient workload-cell id that every span and stream
//!   event records, so Chrome-trace export can group one cross-layer
//!   flow (workload → checker → `simnet` RPC) per check.
//!
//! # Overhead contract
//!
//! Telemetry is **off by default**. Every entry point starts with one
//! relaxed atomic load ([`enabled`]) and returns immediately when the
//! layer is disabled — no allocation, no lock, no clock read. The
//! committed `telemetry-overhead` bench (pc-bench) measures that
//! early-return cost and asserts the instrumentation adds < 3% to the
//! snapshot-engine microbench. When enabled, events funnel through one
//! `Mutex<Registry>`; the instrumented operations (crash-state
//! reconstruction, golden-state replay, recovery) cost micro- to
//! milliseconds each, so a ~20 ns lock per event is noise.
//!
//! # Enabling
//!
//! * `PC_TRACE=1` (or any other truthy value) — collect telemetry;
//! * `PC_TRACE=summary` — collect *and* print a per-check summary table
//!   (stage timings, counters, cache hit rates, pool utilization);
//! * [`set_enabled`] — programmatic switch, used by
//!   `paracrash --telemetry-out PATH [--telemetry-format chrome]`.
//!
//! # Example
//!
//! ```
//! use pc_rt::obs;
//!
//! obs::set_enabled(true);
//! let mark = obs::mark();
//! {
//!     let _stage = obs::span("example.stage");
//!     obs::count("example.items", 3);
//! }
//! let summary = obs::render_summary(&mark, "example");
//! assert!(summary.contains("example.stage"));
//! assert!(summary.contains("example.items"));
//! obs::set_enabled(false);
//! ```

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

use crate::bench::fmt_ns;

#[path = "stream.rs"]
pub mod stream;

#[path = "prof.rs"]
pub mod prof;

pub use prof::AllocStat;

// ---------------------------------------------------------------------------
// Leveled logging
// ---------------------------------------------------------------------------

/// Log severity. The threshold defaults to [`Level::Error`]: fatal
/// diagnostics always reach stderr, everything else is opt-in through
/// `PC_LOG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fatal / always-visible diagnostics.
    Error = 0,
    /// Suspicious but non-fatal conditions.
    Warn = 1,
    /// Progress notes ("wrote file X").
    Info = 2,
    /// Per-event chatter (RPC deliveries, bench progress).
    Debug = 3,
}

impl Level {
    /// `PC_LOG` spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a `PC_LOG` value (`off` silences even errors).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// `PC_LOG` environment variable: log threshold (`warn|info|debug`,
/// default `error`; `off` silences everything).
pub const LOG_ENV: &str = "PC_LOG";

/// Threshold encoding: 0..=3 map to [`Level`], 4 = fully off,
/// `u8::MAX` = not yet initialized from the environment.
static LOG_THRESHOLD: AtomicU8 = AtomicU8::new(u8::MAX);
const LOG_OFF: u8 = 4;

fn log_threshold() -> u8 {
    let v = LOG_THRESHOLD.load(Ordering::Relaxed);
    if v != u8::MAX {
        return v;
    }
    let initial = match std::env::var(LOG_ENV) {
        Ok(s) => match Level::parse(&s) {
            Some(l) => l as u8,
            None if s.trim().eq_ignore_ascii_case("off") => LOG_OFF,
            None => Level::Error as u8,
        },
        Err(_) => Level::Error as u8,
    };
    // A concurrent initializer computes the same value; the race is benign.
    LOG_THRESHOLD.store(initial, Ordering::Relaxed);
    initial
}

/// Override the log threshold (`None` silences everything).
pub fn set_log_level(level: Option<Level>) {
    LOG_THRESHOLD.store(level.map_or(LOG_OFF, |l| l as u8), Ordering::Relaxed);
}

/// `true` if a message at `level` would be emitted. The logging macros
/// check this before formatting, so disabled levels cost one atomic load.
pub fn log_enabled(level: Level) -> bool {
    let t = log_threshold();
    t != LOG_OFF && (level as u8) <= t
}

/// Emit one log line to stderr. Use the [`crate::pc_warn!`]-family macros
/// instead of calling this directly — they skip the formatting work when
/// the level is disabled.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("[{}] {args}", level.as_str());
}

/// Log at an explicit [`Level`]; formatting only happens when the level
/// is enabled. Prefer the per-level shorthands.
#[macro_export]
macro_rules! pc_log {
    ($lvl:expr, $($arg:tt)*) => {
        if $crate::obs::log_enabled($lvl) {
            $crate::obs::log($lvl, format_args!($($arg)*));
        }
    };
}

/// Log an error (visible by default).
#[macro_export]
macro_rules! pc_error {
    ($($arg:tt)*) => { $crate::pc_log!($crate::obs::Level::Error, $($arg)*) };
}

/// Log a warning (silent unless `PC_LOG=warn` or lower).
#[macro_export]
macro_rules! pc_warn {
    ($($arg:tt)*) => { $crate::pc_log!($crate::obs::Level::Warn, $($arg)*) };
}

/// Log a progress note (silent unless `PC_LOG=info` or lower).
#[macro_export]
macro_rules! pc_info {
    ($($arg:tt)*) => { $crate::pc_log!($crate::obs::Level::Info, $($arg)*) };
}

/// Log per-event chatter (silent unless `PC_LOG=debug`).
#[macro_export]
macro_rules! pc_debug {
    ($($arg:tt)*) => { $crate::pc_log!($crate::obs::Level::Debug, $($arg)*) };
}

// ---------------------------------------------------------------------------
// Enable / disable
// ---------------------------------------------------------------------------

/// `PC_TRACE` environment variable: `summary` collects and prints a
/// per-check table, any other truthy value collects silently.
pub const TRACE_ENV: &str = "PC_TRACE";

static TELEMETRY_ON: AtomicBool = AtomicBool::new(false);
static SUMMARY_ON: AtomicBool = AtomicBool::new(false);
static TRACE_INIT: Once = Once::new();

fn init_from_env() {
    TRACE_INIT.call_once(|| {
        if let Ok(v) = std::env::var(TRACE_ENV) {
            match v.trim().to_ascii_lowercase().as_str() {
                "" | "0" | "off" | "false" => {}
                "summary" => {
                    TELEMETRY_ON.store(true, Ordering::Relaxed);
                    SUMMARY_ON.store(true, Ordering::Relaxed);
                }
                _ => TELEMETRY_ON.store(true, Ordering::Relaxed),
            }
        }
        // `PC_EVENTS=path` alone turns on both planes: the stream's
        // bootstrap attaches its sink, which re-enables the registry.
        stream::init_from_env();
        // `PC_PROFILE` bootstraps the self-profiling plane; and any
        // env-enabled telemetry gets allocation accounting for free
        // (so `PC_TRACE=summary` shows per-stage alloc bytes).
        prof::init_from_env();
        if TELEMETRY_ON.load(Ordering::Relaxed) {
            prof::set_alloc_tracking(true);
        }
    });
}

/// `true` when telemetry collection is on. This is the fast path every
/// instrumentation site takes: after the one-time `PC_TRACE` parse it is
/// a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    TELEMETRY_ON.load(Ordering::Relaxed)
}

/// Turn collection on or off programmatically (overrides `PC_TRACE`).
/// Allocation accounting rides along: enabled telemetry implies
/// span-attributed alloc counters (still lock-free in the allocator).
pub fn set_enabled(on: bool) {
    init_from_env();
    TELEMETRY_ON.store(on, Ordering::Relaxed);
    prof::set_alloc_tracking(on);
}

/// `true` when `PC_TRACE=summary` asked for per-check summary tables.
pub fn summary_enabled() -> bool {
    init_from_env();
    SUMMARY_ON.load(Ordering::Relaxed) && TELEMETRY_ON.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Causal trace ids
// ---------------------------------------------------------------------------

/// The ambient trace id every span and stream event records. Process
/// global rather than thread local: a campaign checks one workload cell
/// at a time, and the pool's verdict workers must inherit the cell's id
/// without per-task plumbing. 0 = "no cell" (single-check CLI runs).
static TRACE_ID: AtomicU64 = AtomicU64::new(0);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Set the ambient causal trace id (0 clears it). Campaign drivers call
/// this once per workload cell so every span — down to `simnet` RPC
/// deliveries on pool worker threads — tags the cell that caused it.
pub fn set_trace_id(id: u64) {
    TRACE_ID.store(id, Ordering::Relaxed);
}

/// The ambient causal trace id (one relaxed load).
#[inline]
pub fn current_trace_id() -> u64 {
    TRACE_ID.load(Ordering::Relaxed)
}

/// Allocate a fresh, process-unique trace id (monotonic from 1).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// One recorded span: a named interval on one thread.
///
/// `start_ns` is measured from a process-global monotonic epoch (the
/// first telemetry event), so spans from every thread share one timeline
/// and serialize directly as Chrome trace-event `ts`/`dur` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name (`check.enumerate`, `recover/BeeGFS`, …).
    pub name: &'static str,
    /// Coarse category (`check`, `pfs`, `pool`, …) — the Chrome trace
    /// `cat` field, used for filtering in Perfetto.
    pub cat: &'static str,
    /// Small dense id of the recording thread (assigned on first span).
    pub tid: u32,
    /// Nesting depth on its thread at open time (0 = top level).
    pub depth: u32,
    /// Start, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Causal trace id captured at open time ([`current_trace_id`];
    /// 0 = outside any workload cell). Chrome-trace export groups spans
    /// by this id so each check reads as one cross-layer flow.
    pub trace_id: u64,
}

const HIST_BUCKETS: usize = 48;

/// Log₂-bucketed histogram of nanosecond observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Hist {
    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let b = (64 - v.max(1).leading_zeros() - 1) as usize;
        self.buckets[b.min(HIST_BUCKETS - 1)] += 1;
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// Approximate quantile (bucket upper bound); exact for `q = 1.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Upper bound of bucket i, clamped to the observed max.
                return (1u64 << (i + 1)).saturating_sub(1).min(self.max);
            }
        }
        self.max
    }
}

/// Flattened histogram statistics for snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum, nanoseconds.
    pub sum_ns: u64,
    /// Smallest observation.
    pub min_ns: u64,
    /// Largest observation.
    pub max_ns: u64,
    /// Mean.
    pub mean_ns: u64,
    /// Approximate median.
    pub p50_ns: u64,
    /// Approximate 95th percentile.
    pub p95_ns: u64,
    /// Approximate 99th percentile.
    pub p99_ns: u64,
    /// Approximate 99.9th percentile — the tail number the extreme-scale
    /// work watches (one straggler verdict stalls a whole scope run).
    pub p999_ns: u64,
}

/// The process-global event store.
struct Registry {
    spans: Vec<SpanRec>,
    dropped_spans: u64,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
    /// Total telemetry operations recorded while enabled — the event
    /// count the overhead bench multiplies by the per-call disabled cost.
    ops: u64,
}

impl Registry {
    const fn new() -> Registry {
        Registry {
            spans: Vec::new(),
            dropped_spans: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            ops: 0,
        }
    }
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry::new());

/// Backstop against unbounded memory on very long enabled runs; past the
/// cap, spans are counted in `dropped_spans` instead of stored.
const SPAN_CAP: usize = 1 << 20;

static EPOCH: OnceLock<Instant> = OnceLock::new();

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn tid() -> u32 {
    TID.with(|c| {
        let v = c.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// An open span; records itself into the registry on drop. No-op (and
/// cost-free beyond one atomic load) when telemetry is disabled.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    depth: u32,
    trace_id: u64,
    prof: prof::SpanToken,
}

/// Open a span in the default category.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_cat(name, "")
}

/// Open a span with an explicit category (Chrome trace `cat`).
#[inline]
pub fn span_cat(name: &'static str, cat: &'static str) -> Span {
    if !enabled() {
        return Span { open: None };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    if stream::enabled() {
        stream::emit(stream::EventKind::SpanOpen, name, 0, cat);
    }
    Span {
        open: Some(OpenSpan {
            name,
            cat,
            start_ns: now_ns(),
            depth,
            trace_id: current_trace_id(),
            prof: prof::on_span_open(name),
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let dur_ns = now_ns().saturating_sub(open.start_ns);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        prof::on_span_close(open.prof);
        let rec = SpanRec {
            name: open.name,
            cat: open.cat,
            tid: tid(),
            depth: open.depth,
            start_ns: open.start_ns,
            dur_ns,
            trace_id: open.trace_id,
        };
        {
            let mut reg = REGISTRY.lock().unwrap();
            reg.ops += 1;
            if reg.spans.len() < SPAN_CAP {
                reg.spans.push(rec);
            } else {
                reg.dropped_spans += 1;
            }
        }
        if stream::enabled() {
            stream::emit(stream::EventKind::SpanClose, open.name, dur_ns, open.cat);
        }
    }
}

// ---------------------------------------------------------------------------
// Counters / gauges / histograms
// ---------------------------------------------------------------------------

/// Add `delta` to a named counter.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    {
        let mut reg = REGISTRY.lock().unwrap();
        reg.ops += 1;
        *reg.counters.entry(name).or_insert(0) += delta;
    }
    if stream::enabled() {
        stream::emit(stream::EventKind::Counter, name, delta, "");
    }
}

/// Raise a named high-water-mark gauge to at least `value`.
#[inline]
pub fn gauge_max(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap();
    reg.ops += 1;
    let g = reg.gauges.entry(name).or_insert(0);
    *g = (*g).max(value);
}

/// Record one nanosecond observation into a named histogram.
#[inline]
pub fn observe_ns(name: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap();
    reg.ops += 1;
    reg.hists.entry(name).or_default().record(ns);
}

// ---------------------------------------------------------------------------
// Snapshot / reset
// ---------------------------------------------------------------------------

/// Everything the registry holds, exported for serialization.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// All spans, sorted by start time (monotonic `ts` for Chrome
    /// traces).
    pub spans: Vec<SpanRec>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histogram summaries, sorted by name.
    pub hists: Vec<(String, HistSummary)>,
    /// Spans lost to the memory backstop.
    pub dropped_spans: u64,
    /// Telemetry operations recorded while enabled (spans + counter /
    /// gauge / histogram updates) — the instrumentation-site count the
    /// overhead bench scales by.
    pub ops: u64,
    /// Per-span allocation attribution (spans that allocated while
    /// accounting was on, plus `"(untracked)"`), sorted by name.
    pub allocs: Vec<(String, AllocStat)>,
    /// Process-wide allocation totals while accounting was on.
    pub alloc_total: AllocStat,
}

/// Export the registry. Spans come back sorted by `start_ns`.
pub fn snapshot() -> TelemetrySnapshot {
    let (allocs, alloc_total) = prof::alloc_snapshot();
    let reg = REGISTRY.lock().unwrap();
    let mut spans = reg.spans.clone();
    spans.sort_by_key(|s| (s.start_ns, s.tid, s.depth));
    TelemetrySnapshot {
        spans,
        counters: reg
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
        hists: reg
            .hists
            .iter()
            .map(|(k, h)| {
                (
                    k.to_string(),
                    HistSummary {
                        count: h.count,
                        sum_ns: h.sum,
                        min_ns: if h.count == 0 { 0 } else { h.min },
                        max_ns: h.max,
                        mean_ns: h.mean(),
                        p50_ns: h.quantile(0.5),
                        p95_ns: h.quantile(0.95),
                        p99_ns: h.quantile(0.99),
                        p999_ns: h.quantile(0.999),
                    },
                )
            })
            .collect(),
        dropped_spans: reg.dropped_spans,
        ops: reg.ops,
        allocs,
        alloc_total,
    }
}

/// Clear the registry (tests and benches; production runs accumulate).
pub fn reset() {
    {
        let mut reg = REGISTRY.lock().unwrap();
        reg.spans.clear();
        reg.dropped_spans = 0;
        reg.counters.clear();
        reg.gauges.clear();
        reg.hists.clear();
        reg.ops = 0;
    }
    prof::reset();
}

// ---------------------------------------------------------------------------
// Summary windows
// ---------------------------------------------------------------------------

/// A watermark into the registry taken at the start of a unit of work
/// (one `check_stack` call); [`render_summary`] reports the delta.
#[derive(Debug, Clone, Default)]
pub struct Mark {
    span_idx: usize,
    counters: BTreeMap<&'static str, u64>,
}

/// Take a watermark for a later [`render_summary`].
pub fn mark() -> Mark {
    if !enabled() {
        return Mark::default();
    }
    let reg = REGISTRY.lock().unwrap();
    Mark {
        span_idx: reg.spans.len(),
        counters: reg.counters.clone(),
    }
}

/// Render the human-readable summary table of everything recorded since
/// `mark`: per-span-name call counts and timings, counter deltas, gauges,
/// histograms, plus derived lines — a hit rate for every `X.hits` /
/// `X.misses` counter pair and pool utilization when the pool gauges are
/// present.
pub fn render_summary(mark: &Mark, title: &str) -> String {
    use std::fmt::Write as _;
    let reg = REGISTRY.lock().unwrap();
    let mut out = String::new();
    let _ = writeln!(out, "── telemetry summary: {title} ──");

    // Spans since the mark, aggregated by name in first-seen order.
    let mut agg: Vec<(&'static str, u64, u64, u64)> = Vec::new(); // name, calls, total, max
    for s in reg.spans.iter().skip(mark.span_idx.min(reg.spans.len())) {
        match agg.iter_mut().find(|(n, ..)| *n == s.name) {
            Some((_, calls, total, max)) => {
                *calls += 1;
                *total += s.dur_ns;
                *max = (*max).max(s.dur_ns);
            }
            None => agg.push((s.name, 1, s.dur_ns, s.dur_ns)),
        }
    }
    agg.sort_by_key(|&(_, _, total, _)| std::cmp::Reverse(total));
    if !agg.is_empty() {
        let _ = writeln!(
            out,
            "  {:<34} {:>8} {:>12} {:>12} {:>12}",
            "span", "calls", "total", "mean", "max"
        );
        for (name, calls, total, max) in &agg {
            let _ = writeln!(
                out,
                "  {:<34} {:>8} {:>12} {:>12} {:>12}",
                name,
                calls,
                fmt_ns(*total as f64),
                fmt_ns(*total as f64 / *calls as f64),
                fmt_ns(*max as f64),
            );
        }
    }

    // Counter deltas since the mark.
    let delta: Vec<(&'static str, u64)> = reg
        .counters
        .iter()
        .filter_map(|(k, v)| {
            let d = v - mark.counters.get(k).copied().unwrap_or(0);
            (d > 0).then_some((*k, d))
        })
        .collect();
    if !delta.is_empty() {
        let _ = writeln!(out, "  {:<34} {:>8}", "counter", "value");
        for (name, v) in &delta {
            let _ = writeln!(out, "  {:<34} {:>8}", name, v);
        }
    }
    if !reg.gauges.is_empty() {
        let _ = writeln!(out, "  {:<34} {:>8}", "gauge (run max)", "value");
        for (name, v) in reg.gauges.iter() {
            let _ = writeln!(out, "  {:<34} {:>8}", name, v);
        }
    }
    if !reg.hists.is_empty() {
        let _ = writeln!(
            out,
            "  {:<34} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "histogram (run total)", "count", "mean", "p50", "p95", "p99", "p99.9", "max"
        );
        for (name, h) in reg.hists.iter() {
            let _ = writeln!(
                out,
                "  {:<34} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                name,
                h.count,
                fmt_ns(h.mean() as f64),
                fmt_ns(h.quantile(0.5) as f64),
                fmt_ns(h.quantile(0.95) as f64),
                fmt_ns(h.quantile(0.99) as f64),
                fmt_ns(h.quantile(0.999) as f64),
                fmt_ns(h.max as f64),
            );
        }
    }

    // Allocation attribution (whole run, not windowed: the table is a
    // set of process-global atomics, cleared only by `reset`).
    let (allocs, alloc_total) = prof::alloc_snapshot();
    if alloc_total.count > 0 {
        let _ = writeln!(
            out,
            "  {:<34} {:>10} {:>12} {:>12}",
            "alloc by span (run total)", "count", "bytes", "peak"
        );
        for (name, a) in &allocs {
            let _ = writeln!(
                out,
                "  {:<34} {:>10} {:>12} {:>12}",
                name,
                a.count,
                prof::fmt_bytes(a.bytes as f64),
                prof::fmt_bytes(a.peak_bytes as f64),
            );
        }
        let _ = writeln!(
            out,
            "  {:<34} {:>10} {:>12} {:>12}",
            "alloc total",
            alloc_total.count,
            prof::fmt_bytes(alloc_total.bytes as f64),
            prof::fmt_bytes(alloc_total.peak_bytes as f64),
        );
    }

    // Derived: hit rates for every `X.hits` / `X.misses` counter pair.
    let get = |name: &str| delta.iter().find(|(k, _)| *k == name).map(|&(_, v)| v);
    let prefixes: Vec<String> = delta
        .iter()
        .filter_map(|(k, _)| k.strip_suffix(".hits").map(str::to_string))
        .collect();
    for p in prefixes {
        let hits = get(&format!("{p}.hits")).unwrap_or(0);
        let misses = get(&format!("{p}.misses")).unwrap_or(0);
        let evictions = get(&format!("{p}.evictions")).unwrap_or(0);
        if hits + misses > 0 {
            let _ = writeln!(
                out,
                "  {:<34} {:>7.1}%  ({hits} hits / {misses} misses / {evictions} evictions)",
                format!("{p} hit rate"),
                100.0 * hits as f64 / (hits + misses) as f64,
            );
        }
    }

    // Derived: pool utilization = busy time / (span wall × workers).
    // Under `PC_THREADS=1` the pool takes the inline reference path —
    // work runs on the caller with no `pool.par_map` span to divide by,
    // so utilization is meaningless there, not 0%.
    let workers = reg.gauges.get("pool.workers").copied().unwrap_or(0);
    if let Some(busy) = get("pool.busy_ns") {
        let wall: u64 = agg
            .iter()
            .filter(|(n, ..)| *n == "pool.par_map" || *n == "pool.scope")
            .map(|&(_, _, total, _)| total)
            .sum();
        if workers > 1 && wall > 0 {
            let _ = writeln!(
                out,
                "  {:<34} {:>7.1}%  (busy {} over {workers} workers × {})",
                "pool utilization",
                100.0 * busy as f64 / (wall as f64 * workers as f64),
                fmt_ns(busy as f64),
                fmt_ns(wall as f64),
            );
        } else if workers <= 1 {
            let _ = writeln!(
                out,
                "  {:<34} {:>8}  (inline reference path, busy {})",
                "pool utilization",
                "n/a",
                fmt_ns(busy as f64),
            );
        }
    }

    // Derived: work-stealing scheduler activity, when `Pool::scope` ran.
    // The inline path has no deques to steal from, so the steal columns
    // would be noise under `PC_THREADS=1` — skip them entirely.
    if workers > 1 {
        if let Some(scopes) = get("pool.scope_calls") {
            let steals = get("pool.steals").unwrap_or(0);
            let queued = get("pool.tasks_queued").unwrap_or(0);
            let peak = reg.gauges.get("pool.max_queue_depth").copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "  {:<34} {steals:>8}  ({queued} tasks over {scopes} scope runs, peak queue {peak})",
                "pool steals",
            );
        }
    }
    out
}

/// Serialize telemetry/profiling tests across modules: the registry,
/// the profiling planes, and the allocator table are all process-global.
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn with_telemetry<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        let r = f();
        reset();
        set_enabled(false);
        r
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        reset();
        {
            let _s = span("obs.test.disabled");
            count("obs.test.disabled.ctr", 5);
            gauge_max("obs.test.disabled.gauge", 5);
            observe_ns("obs.test.disabled.hist", 5);
        }
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.hists.is_empty());
        assert_eq!(snap.ops, 0);
    }

    #[test]
    fn spans_nest_and_time() {
        with_telemetry(|| {
            {
                let _outer = span_cat("obs.test.outer", "test");
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _inner = span_cat("obs.test.inner", "test");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            let snap = snapshot();
            let outer = snap
                .spans
                .iter()
                .find(|s| s.name == "obs.test.outer")
                .unwrap();
            let inner = snap
                .spans
                .iter()
                .find(|s| s.name == "obs.test.inner")
                .unwrap();
            assert_eq!(inner.depth, outer.depth + 1);
            assert_eq!(inner.tid, outer.tid);
            assert!(inner.start_ns >= outer.start_ns);
            assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
            assert!(outer.dur_ns >= inner.dur_ns);
        });
    }

    #[test]
    fn counters_gauges_hists_accumulate() {
        with_telemetry(|| {
            count("obs.test.ctr", 2);
            count("obs.test.ctr", 3);
            gauge_max("obs.test.gauge", 7);
            gauge_max("obs.test.gauge", 4);
            for v in [100, 200, 400, 100_000] {
                observe_ns("obs.test.hist", v);
            }
            let snap = snapshot();
            assert_eq!(snap.counters, vec![("obs.test.ctr".to_string(), 5)]);
            assert_eq!(snap.gauges, vec![("obs.test.gauge".to_string(), 7)]);
            let (_, h) = &snap.hists[0];
            assert_eq!(h.count, 4);
            assert_eq!(h.min_ns, 100);
            assert_eq!(h.max_ns, 100_000);
            assert_eq!(h.mean_ns, (100 + 200 + 400 + 100_000) / 4);
            assert!(h.p50_ns >= 100 && h.p50_ns <= 511, "p50 = {}", h.p50_ns);
            assert!(h.p95_ns <= 100_000);
            // The 99th percentile sits in the top bucket: above the
            // median and clamped to the observed max.
            assert!(h.p99_ns >= h.p50_ns && h.p99_ns <= h.max_ns);
            assert_eq!(h.p99_ns, 100_000);
            assert!(snap.ops >= 6);
        });
    }

    #[test]
    fn summary_windows_on_marks_and_derives_hit_rates() {
        with_telemetry(|| {
            count("obs.test.cache.hits", 9);
            let m = mark();
            {
                let _s = span("obs.test.stage");
            }
            count("obs.test.cache.hits", 3);
            count("obs.test.cache.misses", 1);
            let text = render_summary(&m, "unit");
            assert!(text.contains("obs.test.stage"));
            // Only the delta since the mark: 3 hits, not 12.
            assert!(text.contains("obs.test.cache hit rate"), "{text}");
            assert!(text.contains("75.0%"), "{text}");
            assert!(text.contains("(3 hits / 1 misses / 0 evictions)"), "{text}");
        });
    }

    #[test]
    fn snapshot_spans_sorted_by_start() {
        with_telemetry(|| {
            for _ in 0..50 {
                let _s = span("obs.test.seq");
            }
            let snap = snapshot();
            assert!(snap
                .spans
                .windows(2)
                .all(|w| w[0].start_ns <= w[1].start_ns));
        });
    }

    #[test]
    fn log_levels_parse_and_gate() {
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_log_level(Some(Level::Warn));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        set_log_level(None);
        assert!(!log_enabled(Level::Error));
        set_log_level(Some(Level::Error));
    }
}
