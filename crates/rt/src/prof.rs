//! `obs::prof` — the self-profiling plane: a cooperative span-stack
//! sampling profiler plus span-attributed allocation accounting.
//!
//! The paper's thesis is cross-layer *pinpointing*; this module applies
//! the same discipline to the checker's own performance, on `std` alone
//! (the workspace is hermetic — no registry deps):
//!
//! * **Sampling profiler** — every instrumented thread (pool workers
//!   register via [`register_thread`]; any thread that opens a span
//!   joins lazily) publishes a *shadow* of its open-span stack through a
//!   seqlock: a slot of atomics the owner updates wait-free on span
//!   open/close, and a background sampler thread reads without stopping
//!   anyone. Samples fold into stack → count aggregates and export as
//!   inferno-compatible `.folded` text ([`render_folded`]) via
//!   `--profile-out` / `PC_PROFILE`, and as the no-script flame view in
//!   the `paracrash report` dashboard.
//! * **Allocation accounting** — [`CountingAlloc`] wraps the system
//!   allocator (installed as the workspace `#[global_allocator]` here)
//!   and attributes allocation count / bytes / peak to the innermost
//!   open span, surfaced in `PC_TRACE=summary`, telemetry JSON, and the
//!   dashboard. This is what turns "arena-allocate `tracer::Record`"
//!   from a hunch into a measured number.
//!
//! # Overhead contract
//!
//! Both planes are **off by default** behind one bitmask
//! ([`sampling_enabled`] / [`alloc_tracking_enabled`]): the disabled
//! path in the span hooks and in the allocator is a single relaxed
//! atomic load, enforced by the `prof-overhead` bench under the same
//! <3% budget as the telemetry plane.
//!
//! # Seqlock protocol (DESIGN.md §15)
//!
//! Each shadow slot is `{ seq, depth, frames[32] }`, all atomics. The
//! owning thread is the only writer: it bumps `seq` to odd, mutates
//! `frames`/`depth`, then bumps `seq` to even. The sampler retries a
//! bounded number of times until it observes the same even `seq` before
//! and after copying the frames; a torn read is simply dropped (one
//! lost sample, never a corrupt stack). Frames hold interned name ids,
//! so the writer path never allocates or locks.
//!
//! # Attribution approximation
//!
//! Deallocations are subtracted from the span open *at free time*, not
//! the span that allocated — per-span `peak_bytes` is therefore a
//! peak-of-net approximation. Totals (count / bytes) are exact.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Plane bitmask — the one-load disabled path
// ---------------------------------------------------------------------------

const PLANE_SAMPLING: u8 = 1;
const PLANE_ALLOC: u8 = 2;

static PLANES: AtomicU8 = AtomicU8::new(0);

#[inline]
fn planes() -> u8 {
    PLANES.load(Ordering::Relaxed)
}

/// `PC_PROFILE` environment variable: any truthy value enables the
/// profiling planes; a value that is not `1|on|true` is treated as the
/// `.folded` output path (equivalent to `--profile-out PATH`).
pub const PROFILE_ENV: &str = "PC_PROFILE";

/// `PC_PROF_HZ` environment variable: sampler frequency in Hz
/// (default 97, clamped to 1..=10000). A prime default avoids lockstep
/// with periodic work.
pub const HZ_ENV: &str = "PC_PROF_HZ";

/// `true` while the sampling profiler is collecting (one relaxed load).
#[inline]
pub fn sampling_enabled() -> bool {
    planes() & PLANE_SAMPLING != 0
}

/// `true` while the counting allocator is attributing (one relaxed load).
#[inline]
pub fn alloc_tracking_enabled() -> bool {
    planes() & PLANE_ALLOC != 0
}

/// Turn span-attributed allocation accounting on or off. Rides
/// [`super::set_enabled`]: enabling telemetry enables accounting, so
/// `PC_TRACE=summary` and `--telemetry-out` get alloc columns for free.
pub fn set_alloc_tracking(on: bool) {
    if on {
        PLANES.fetch_or(PLANE_ALLOC, Ordering::Relaxed);
    } else {
        PLANES.fetch_and(!PLANE_ALLOC, Ordering::Relaxed);
    }
}

/// Sampler frequency from `PC_PROF_HZ` (default 97 Hz, clamped).
pub fn hz_from_env() -> u32 {
    std::env::var(HZ_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map(|h| h.clamp(1, 10_000))
        .unwrap_or(97)
}

// ---------------------------------------------------------------------------
// Name interning — shadow frames carry u32 ids, never pointers
// ---------------------------------------------------------------------------

struct Names {
    ids: BTreeMap<&'static str, u32>,
    list: Vec<&'static str>,
}

static NAMES: Mutex<Names> = Mutex::new(Names {
    ids: BTreeMap::new(),
    list: Vec::new(),
});

/// Slot 0 of the allocation table: allocations made outside any open
/// span (or past the table's capacity).
const UNTRACKED: &str = "(untracked)";

fn intern(name: &'static str) -> u32 {
    let mut n = NAMES.lock().unwrap_or_else(|e| e.into_inner());
    if n.list.is_empty() {
        n.list.push(UNTRACKED);
    }
    if let Some(&id) = n.ids.get(name) {
        return id;
    }
    let id = n.list.len() as u32;
    n.list.push(name);
    n.ids.insert(name, id);
    id
}

fn resolve(ids: &[u32]) -> Vec<&'static str> {
    let n = NAMES.lock().unwrap_or_else(|e| e.into_inner());
    ids.iter()
        .map(|&id| n.list.get(id as usize).copied().unwrap_or("(?)"))
        .collect()
}

// ---------------------------------------------------------------------------
// Shadow slots — the seqlock-published per-thread span stacks
// ---------------------------------------------------------------------------

const MAX_FRAMES: usize = 32;

struct ShadowSlot {
    /// Seqlock generation: odd while the owner is mid-update.
    seq: AtomicU32,
    depth: AtomicU32,
    frames: [AtomicU32; MAX_FRAMES],
    /// Pushes refused because the stack shadow was full.
    truncated: AtomicU64,
}

impl ShadowSlot {
    fn new() -> ShadowSlot {
        ShadowSlot {
            seq: AtomicU32::new(0),
            depth: AtomicU32::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
            truncated: AtomicU64::new(0),
        }
    }

    /// Owner-only: push one frame. Returns `false` on overflow (the
    /// matching close must then skip its pop).
    fn push(&self, id: u32) -> bool {
        let d = self.depth.load(Ordering::SeqCst) as usize;
        if d >= MAX_FRAMES {
            self.truncated.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        let s = self.seq.load(Ordering::SeqCst);
        self.seq.store(s.wrapping_add(1), Ordering::SeqCst);
        self.frames[d].store(id, Ordering::SeqCst);
        self.depth.store((d + 1) as u32, Ordering::SeqCst);
        self.seq.store(s.wrapping_add(2), Ordering::SeqCst);
        true
    }

    /// Owner-only: pop one frame.
    fn pop(&self) {
        let d = self.depth.load(Ordering::SeqCst);
        let s = self.seq.load(Ordering::SeqCst);
        self.seq.store(s.wrapping_add(1), Ordering::SeqCst);
        self.depth.store(d.saturating_sub(1), Ordering::SeqCst);
        self.seq.store(s.wrapping_add(2), Ordering::SeqCst);
    }

    /// Owner-only: empty the shadow (thread exit, before recycling).
    fn clear(&self) {
        let s = self.seq.load(Ordering::SeqCst);
        self.seq.store(s.wrapping_add(1), Ordering::SeqCst);
        self.depth.store(0, Ordering::SeqCst);
        self.seq.store(s.wrapping_add(2), Ordering::SeqCst);
    }

    /// Sampler-side: copy a consistent stack, outermost first. `None`
    /// when the stack is empty or every retry saw a torn update.
    fn read(&self) -> Option<Vec<u32>> {
        for _ in 0..4 {
            let s1 = self.seq.load(Ordering::SeqCst);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let d = (self.depth.load(Ordering::SeqCst) as usize).min(MAX_FRAMES);
            let mut stack = Vec::with_capacity(d);
            for f in &self.frames[..d] {
                stack.push(f.load(Ordering::SeqCst));
            }
            if self.seq.load(Ordering::SeqCst) == s1 {
                return if stack.is_empty() { None } else { Some(stack) };
            }
        }
        None
    }
}

/// Every live slot the sampler walks. Bounded by the maximum number of
/// concurrent instrumented threads: exiting threads recycle their slot
/// through `FREE` instead of growing this list.
static SLOTS: Mutex<Vec<Arc<ShadowSlot>>> = Mutex::new(Vec::new());
static FREE: Mutex<Vec<Arc<ShadowSlot>>> = Mutex::new(Vec::new());

struct SlotGuard {
    slot: RefCell<Option<Arc<ShadowSlot>>>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        if let Some(s) = self.slot.borrow_mut().take() {
            s.clear();
            FREE.lock().unwrap_or_else(|e| e.into_inner()).push(s);
        }
    }
}

thread_local! {
    static SLOT: SlotGuard = const {
        SlotGuard {
            slot: RefCell::new(None),
        }
    };
}

fn acquire_slot() -> Arc<ShadowSlot> {
    let recycled = FREE.lock().unwrap_or_else(|e| e.into_inner()).pop();
    match recycled {
        Some(s) => s,
        None => {
            let s = Arc::new(ShadowSlot::new());
            SLOTS
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(s.clone());
            s
        }
    }
}

/// Run `f` against this thread's shadow slot, acquiring one lazily.
/// `None` during thread-local teardown (sampling just stops early).
fn with_slot<R>(f: impl FnOnce(&ShadowSlot) -> R) -> Option<R> {
    SLOT.try_with(|g| {
        let mut slot = g.slot.borrow_mut();
        if slot.is_none() {
            *slot = Some(acquire_slot());
        }
        f(slot.as_ref().expect("slot just acquired"))
    })
    .ok()
}

/// Pre-register the calling thread with the sampler (pool workers call
/// this on spawn so their very first span is already visible). No-op
/// when sampling is off — one relaxed load.
pub fn register_thread() {
    if sampling_enabled() {
        let _ = with_slot(|_| ());
    }
}

// ---------------------------------------------------------------------------
// Span hooks — called from `obs::span_cat` / `Drop for Span`
// ---------------------------------------------------------------------------

/// Open-time state a span carries so its close mirrors its open exactly,
/// even if the planes toggle mid-span.
#[derive(Clone, Copy)]
pub(crate) struct SpanToken {
    planes: u8,
    prev_span: u32,
    pushed: bool,
}

impl SpanToken {
    pub(crate) const INERT: SpanToken = SpanToken {
        planes: 0,
        prev_span: 0,
        pushed: false,
    };
}

thread_local! {
    /// Interned id of the innermost open span — the allocator reads
    /// this (and nothing else) to attribute an allocation.
    static CUR_SPAN: Cell<u32> = const { Cell::new(0) };
}

pub(crate) fn on_span_open(name: &'static str) -> SpanToken {
    let p = planes();
    if p == 0 {
        return SpanToken::INERT;
    }
    let id = intern(name);
    let mut tok = SpanToken {
        planes: p,
        prev_span: 0,
        pushed: false,
    };
    if p & PLANE_ALLOC != 0 {
        tok.prev_span = CUR_SPAN
            .try_with(|c| {
                let prev = c.get();
                c.set(id);
                prev
            })
            .unwrap_or(0);
    }
    if p & PLANE_SAMPLING != 0 {
        tok.pushed = with_slot(|s| s.push(id)).unwrap_or(false);
    }
    tok
}

pub(crate) fn on_span_close(tok: SpanToken) {
    if tok.pushed {
        let _ = with_slot(|s| s.pop());
    }
    if tok.planes & PLANE_ALLOC != 0 {
        let _ = CUR_SPAN.try_with(|c| c.set(tok.prev_span));
    }
}

// ---------------------------------------------------------------------------
// The sampler thread and the folded aggregate
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Agg {
    /// Interned stack (outermost first) → sample count.
    stacks: BTreeMap<Vec<u32>, u64>,
    total: u64,
}

static AGG: Mutex<Agg> = Mutex::new(Agg {
    stacks: BTreeMap::new(),
    total: 0,
});

fn sample_once() {
    let slots: Vec<Arc<ShadowSlot>> = SLOTS.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut agg = AGG.lock().unwrap_or_else(|e| e.into_inner());
    for slot in &slots {
        if let Some(stack) = slot.read() {
            *agg.stacks.entry(stack).or_insert(0) += 1;
            agg.total += 1;
        }
    }
}

struct Sampler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

static SAMPLER: Mutex<Option<Sampler>> = Mutex::new(None);

/// Start the sampling profiler at `hz` samples/sec (clamped to
/// 1..=10000). Idempotent: a second call while running is a no-op.
pub fn enable_sampling(hz: u32) {
    PLANES.fetch_or(PLANE_SAMPLING, Ordering::Relaxed);
    let mut guard = SAMPLER.lock().unwrap_or_else(|e| e.into_inner());
    if guard.is_some() {
        return;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let interval_ns = (1_000_000_000u64 / u64::from(hz.clamp(1, 10_000))).max(100_000);
    let handle = std::thread::Builder::new()
        .name("pc-prof-sampler".into())
        .spawn(move || {
            let interval = Duration::from_nanos(interval_ns);
            while !stop2.load(Ordering::Relaxed) {
                sample_once();
                std::thread::sleep(interval);
            }
        })
        .expect("spawn pc-prof-sampler");
    *guard = Some(Sampler { stop, handle });
}

/// Stop the sampler and join its thread. Collected samples stay in the
/// aggregate until [`reset`].
pub fn disable_sampling() {
    PLANES.fetch_and(!PLANE_SAMPLING, Ordering::Relaxed);
    let sampler = SAMPLER.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(s) = sampler {
        s.stop.store(true, Ordering::Relaxed);
        let _ = s.handle.join();
    }
}

/// Total samples folded so far (torn reads excluded).
pub fn samples_total() -> u64 {
    AGG.lock().unwrap_or_else(|e| e.into_inner()).total
}

/// Fold a synthetic stack directly into the aggregate — the test hook
/// behind the folded-output determinism tests (no timing dependence).
pub fn record_synthetic(stack: &[&'static str], count: u64) {
    let ids: Vec<u32> = stack.iter().map(|n| intern(n)).collect();
    if ids.is_empty() {
        return;
    }
    let mut agg = AGG.lock().unwrap_or_else(|e| e.into_inner());
    *agg.stacks.entry(ids).or_insert(0) += count;
    agg.total += count;
}

/// Render the aggregate as inferno-compatible `.folded` text: one
/// `outer;mid;leaf COUNT` line per distinct stack, sorted
/// lexicographically, trailing newline (empty string when no samples).
pub fn render_folded() -> String {
    let stacks: Vec<(Vec<u32>, u64)> = {
        let agg = AGG.lock().unwrap_or_else(|e| e.into_inner());
        agg.stacks.iter().map(|(k, v)| (k.clone(), *v)).collect()
    };
    let mut lines: Vec<String> = stacks
        .iter()
        .map(|(ids, count)| format!("{} {count}", resolve(ids).join(";")))
        .collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Parse `.folded` text back into `(stack frames, count)` rows — the
/// re-parse lint behind verify gate 14 and the dashboard flame view.
pub fn parse_folded(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let Some((stack, count)) = line.rsplit_once(' ') else {
            return Err(format!("folded line {}: no count field", i + 1));
        };
        let count: u64 = count
            .parse()
            .map_err(|_| format!("folded line {}: bad count {count:?}", i + 1))?;
        let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        if frames.iter().any(|f| f.is_empty()) {
            return Err(format!("folded line {}: empty frame", i + 1));
        }
        rows.push((frames, count));
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Output arming — `--profile-out` / `PC_PROFILE=path`
// ---------------------------------------------------------------------------

static ARMED: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Arm a `.folded` output path for [`finish`] to write at exit.
pub fn arm_output(path: impl Into<PathBuf>) {
    *ARMED.lock().unwrap_or_else(|e| e.into_inner()) = Some(path.into());
}

/// Stop sampling and, if an output path is armed, write the folded
/// profile (creating the parent directory). Returns the path written.
pub fn finish() -> std::io::Result<Option<PathBuf>> {
    disable_sampling();
    let path = ARMED.lock().unwrap_or_else(|e| e.into_inner()).take();
    let Some(path) = path else {
        return Ok(None);
    };
    crate::durable::ensure_parent_dir(Path::new(&path))?;
    std::fs::write(&path, render_folded())?;
    Ok(Some(path))
}

// ---------------------------------------------------------------------------
// Allocation accounting — the counting global allocator
// ---------------------------------------------------------------------------

/// Per-span allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStat {
    /// Number of allocations (realloc counts as free + alloc).
    pub count: u64,
    /// Total bytes requested.
    pub bytes: u64,
    /// High-water mark of net live bytes. Per-span this is a
    /// peak-of-net approximation: frees are attributed to the span
    /// open at free time (see module docs).
    pub peak_bytes: u64,
}

struct AllocSlot {
    count: AtomicU64,
    bytes: AtomicU64,
    cur: AtomicI64,
    peak: AtomicI64,
}

impl AllocSlot {
    const fn new() -> AllocSlot {
        AllocSlot {
            count: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            cur: AtomicI64::new(0),
            peak: AtomicI64::new(0),
        }
    }
}

/// Spans with interned id < this get their own attribution slot; the
/// rest share slot 0. 256 comfortably covers every static span name in
/// the workspace, and a fixed table keeps the allocator lock-free.
const ALLOC_SPANS: usize = 256;

static ALLOC_TABLE: [AllocSlot; ALLOC_SPANS] = [const { AllocSlot::new() }; ALLOC_SPANS];

static TOTAL_COUNT: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_CUR: AtomicI64 = AtomicI64::new(0);
static TOTAL_PEAK: AtomicI64 = AtomicI64::new(0);

#[inline]
fn alloc_slot_for_current_span() -> &'static AllocSlot {
    let span = CUR_SPAN.try_with(|c| c.get()).unwrap_or(0) as usize;
    let idx = if span < ALLOC_SPANS { span } else { 0 };
    &ALLOC_TABLE[idx]
}

#[inline]
fn record_alloc(size: usize) {
    let slot = alloc_slot_for_current_span();
    slot.count.fetch_add(1, Ordering::Relaxed);
    slot.bytes.fetch_add(size as u64, Ordering::Relaxed);
    let cur = slot.cur.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    slot.peak.fetch_max(cur, Ordering::Relaxed);
    TOTAL_COUNT.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let total = TOTAL_CUR.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    TOTAL_PEAK.fetch_max(total, Ordering::Relaxed);
}

#[inline]
fn record_dealloc(size: usize) {
    let slot = alloc_slot_for_current_span();
    slot.cur.fetch_sub(size as i64, Ordering::Relaxed);
    TOTAL_CUR.fetch_sub(size as i64, Ordering::Relaxed);
}

/// The counting allocator. Delegates every operation to [`System`];
/// when accounting is enabled ([`set_alloc_tracking`]) it additionally
/// updates the fixed atomic attribution table — no lock, no allocation,
/// no TLS beyond one `Cell` read, so it is safe at any point in the
/// process lifetime including thread teardown.
pub struct CountingAlloc;

// SAFETY: all four methods delegate directly to `System`, which upholds
// the `GlobalAlloc` contract; the accounting side only touches atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() && planes() & PLANE_ALLOC != 0 {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() && planes() & PLANE_ALLOC != 0 {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        if planes() & PLANE_ALLOC != 0 {
            record_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() && planes() & PLANE_ALLOC != 0 {
            record_dealloc(layout.size());
            record_alloc(new_size);
        }
        p
    }
}

/// The workspace-wide global allocator. Defined once, here: every crate
/// in the workspace links `pc-rt`, so every binary gets the counting
/// wrapper (which is pure pass-through until accounting is enabled).
#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

/// Export the attribution table: per-span rows (only spans that
/// allocated; slot 0 is `"(untracked)"`), sorted by span name, plus the
/// process-wide total.
pub fn alloc_snapshot() -> (Vec<(String, AllocStat)>, AllocStat) {
    let names = NAMES.lock().unwrap_or_else(|e| e.into_inner());
    let mut rows: Vec<(String, AllocStat)> = Vec::new();
    for (idx, slot) in ALLOC_TABLE.iter().enumerate() {
        let count = slot.count.load(Ordering::Relaxed);
        let bytes = slot.bytes.load(Ordering::Relaxed);
        if count == 0 && bytes == 0 {
            continue;
        }
        let name = if idx == 0 {
            UNTRACKED
        } else {
            names.list.get(idx).copied().unwrap_or("(?)")
        };
        rows.push((
            name.to_string(),
            AllocStat {
                count,
                bytes,
                peak_bytes: slot.peak.load(Ordering::Relaxed).max(0) as u64,
            },
        ));
    }
    drop(names);
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let total = AllocStat {
        count: TOTAL_COUNT.load(Ordering::Relaxed),
        bytes: TOTAL_BYTES.load(Ordering::Relaxed),
        peak_bytes: TOTAL_PEAK.load(Ordering::Relaxed).max(0) as u64,
    };
    (rows, total)
}

/// Human-readable byte count (`1.50 MB`, `320 B`).
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} kB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

// ---------------------------------------------------------------------------
// Reset / env bootstrap
// ---------------------------------------------------------------------------

/// Clear the sample aggregate and zero the allocation table (tests and
/// benches; production runs accumulate).
pub fn reset() {
    {
        let mut agg = AGG.lock().unwrap_or_else(|e| e.into_inner());
        agg.stacks.clear();
        agg.total = 0;
    }
    for slot in ALLOC_TABLE.iter() {
        slot.count.store(0, Ordering::Relaxed);
        slot.bytes.store(0, Ordering::Relaxed);
        slot.cur.store(0, Ordering::Relaxed);
        slot.peak.store(0, Ordering::Relaxed);
    }
    TOTAL_COUNT.store(0, Ordering::Relaxed);
    TOTAL_BYTES.store(0, Ordering::Relaxed);
    TOTAL_CUR.store(0, Ordering::Relaxed);
    TOTAL_PEAK.store(0, Ordering::Relaxed);
}

/// `PC_PROFILE` bootstrap. Called from inside `obs::init_from_env`'s
/// `Once` closure, so it stores `TELEMETRY_ON` directly — calling
/// `set_enabled` here would re-enter the `Once` and deadlock.
pub(crate) fn init_from_env() {
    let Ok(v) = std::env::var(PROFILE_ENV) else {
        return;
    };
    let v = v.trim().to_string();
    let lower = v.to_ascii_lowercase();
    if matches!(lower.as_str(), "" | "0" | "off" | "false") {
        return;
    }
    super::TELEMETRY_ON.store(true, Ordering::Relaxed);
    PLANES.fetch_or(PLANE_ALLOC, Ordering::Relaxed);
    if !matches!(lower.as_str(), "1" | "on" | "true") {
        arm_output(PathBuf::from(v));
    }
    enable_sampling(hz_from_env());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqlock_push_pop_read_round_trip() {
        let slot = ShadowSlot::new();
        assert!(slot.read().is_none());
        assert!(slot.push(3));
        assert!(slot.push(7));
        assert_eq!(slot.read(), Some(vec![3, 7]));
        slot.pop();
        assert_eq!(slot.read(), Some(vec![3]));
        slot.pop();
        assert!(slot.read().is_none());
        // Overflow refuses the push and counts it.
        for i in 0..MAX_FRAMES as u32 {
            assert!(slot.push(i));
        }
        assert!(!slot.push(99));
        assert_eq!(slot.truncated.load(Ordering::SeqCst), 1);
        slot.clear();
        assert!(slot.read().is_none());
    }

    #[test]
    fn intern_is_stable_and_untracked_is_slot_zero() {
        let a = intern("prof.test.intern.a");
        let b = intern("prof.test.intern.b");
        assert_ne!(a, 0, "slot 0 is reserved for (untracked)");
        assert_ne!(a, b);
        assert_eq!(intern("prof.test.intern.a"), a);
        assert_eq!(
            resolve(&[a, b]),
            vec!["prof.test.intern.a", "prof.test.intern.b"]
        );
        assert_eq!(resolve(&[0]), vec![UNTRACKED]);
    }

    #[test]
    fn folded_render_parse_round_trip() {
        let _guard = crate::obs::TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        reset();
        record_synthetic(&["prof.test.root", "prof.test.mid", "prof.test.leaf"], 4);
        record_synthetic(&["prof.test.root", "prof.test.mid"], 2);
        record_synthetic(&["prof.test.root", "prof.test.mid", "prof.test.leaf"], 1);
        assert_eq!(samples_total(), 7);
        let folded = render_folded();
        // Deterministic: lexicographically sorted, merged counts.
        assert_eq!(
            folded,
            "prof.test.root;prof.test.mid 2\nprof.test.root;prof.test.mid;prof.test.leaf 5\n"
        );
        assert_eq!(folded, render_folded(), "render must be a pure function");
        let rows = parse_folded(&folded).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].0.len(), 3);
        assert_eq!(rows[1].1, 5);
        assert!(parse_folded("no-count-line\n").is_err());
        assert!(parse_folded("a;b notanumber\n").is_err());
        assert!(parse_folded(";; 3\n").is_err());
        reset();
    }

    #[test]
    fn alloc_accounting_attributes_to_innermost_span() {
        let _guard = crate::obs::TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        reset();
        let id = intern("prof.test.alloc.span");
        assert!(
            (id as usize) < ALLOC_SPANS,
            "test span must land in its own slot"
        );
        set_alloc_tracking(true);
        let tok = on_span_open("prof.test.alloc.span");
        let v: Vec<u8> = Vec::with_capacity(64 * 1024);
        on_span_close(tok);
        set_alloc_tracking(false);
        drop(v);
        let (rows, total) = alloc_snapshot();
        let mine = rows
            .iter()
            .find(|(n, _)| n == "prof.test.alloc.span")
            .map(|(_, s)| *s)
            .expect("span slot recorded");
        assert!(mine.count >= 1);
        assert!(mine.bytes >= 64 * 1024, "bytes = {}", mine.bytes);
        assert!(mine.peak_bytes >= 64 * 1024);
        assert!(total.bytes >= mine.bytes);
        assert!(total.peak_bytes >= mine.peak_bytes.min(total.bytes));
        reset();
    }

    #[test]
    fn disabled_planes_record_nothing() {
        let _guard = crate::obs::TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        disable_sampling();
        set_alloc_tracking(false);
        reset();
        let tok = on_span_open("prof.test.disabled.span");
        let _v: Vec<u8> = Vec::with_capacity(4096);
        on_span_close(tok);
        assert_eq!(samples_total(), 0);
        let (rows, total) = alloc_snapshot();
        assert!(rows.is_empty(), "rows = {rows:?}");
        assert_eq!(total, AllocStat::default());
    }

    #[test]
    fn sampler_collects_from_a_registered_thread() {
        let _guard = crate::obs::TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        reset();
        enable_sampling(2000);
        let tok = on_span_open("prof.test.sampled.span");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while samples_total() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        on_span_close(tok);
        disable_sampling();
        assert!(samples_total() > 0, "sampler saw no stacks in 5s");
        assert!(render_folded().contains("prof.test.sampled.span"));
        reset();
    }

    #[test]
    fn fmt_bytes_scales() {
        assert_eq!(fmt_bytes(320.0), "320 B");
        assert_eq!(fmt_bytes(1_500.0), "1.5 kB");
        assert_eq!(fmt_bytes(2_500_000.0), "2.50 MB");
        assert_eq!(fmt_bytes(3_000_000_000.0), "3.00 GB");
    }

    #[test]
    fn hz_clamps_and_defaults() {
        // No env manipulation (tests run in parallel); exercise the
        // clamp arithmetic the parser applies.
        assert_eq!(5u32.clamp(1, 10_000), 5);
        assert_eq!(0u32.clamp(1, 10_000), 1);
        assert_eq!(1_000_000u32.clamp(1, 10_000), 10_000);
    }
}
