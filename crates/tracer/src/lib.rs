#![warn(missing_docs)]

//! # tracer — multi-layer I/O tracing and causality analysis
//!
//! The original ParaCrash traces every layer of the HPC I/O stack with a
//! mix of Recorder 2.0 (HDF5 / MPI-IO / POSIX calls of the test program),
//! `strace` (local I/O and socket calls of user-level PFS servers) and
//! Open-iSCSI (block commands of kernel-level PFS), then *correlates* the
//! per-process trace files into one end-to-end **causality graph** (§4.2).
//!
//! In this reproduction every layer is simulated in-process, so tracing is
//! exact rather than inferred: each simulated call records an [`Event`]
//! into a [`Recorder`], explicitly linked to its caller (caller–callee
//! edges) and, for RPCs, to its matching send/recv (sender–receiver
//! edges). [`CausalityGraph`] then answers `happens_before` queries — the
//! partial order that drives crash-state generation (Algorithm 1) and the
//! persistence analysis (Algorithm 2).

pub mod event;
pub mod graph;
pub mod persist;

pub use event::{Event, EventId, Layer, Payload, Process, Recorder};
pub use graph::{BitSet, CausalityGraph};
pub use persist::{load as load_trace, save as save_trace, save_per_process};
