//! Trace-file serialization.
//!
//! The original ParaCrash writes "a separate file … for each process with
//! traces at each I/O layer" (§5.1) and re-reads them for the correlated
//! analysis. This module gives the simulated stack the same workflow: a
//! [`Recorder`] round-trips through a line-oriented text format, either
//! as one combined file or split per process (the authors' layout).
//!
//! Format (one record per line, space-separated, strings percent-encoded):
//!
//! ```text
//! E <id> <layer> <proc> <parent|-> <object|-> <payload…>
//! X <from> <to>
//! ```

use crate::event::{Event, EventId, Layer, Payload, Process, Recorder};
use simfs::{BlockOp, FsOp, StructTag};
use std::fmt::Write as _;

/// Percent-encode spaces, newlines and `%` so fields stay splittable.
fn enc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b' ' => out.push_str("%20"),
            b'\n' => out.push_str("%0A"),
            b'\t' => out.push_str("%09"),
            b'%' => out.push_str("%25"),
            _ => out.push(b as char),
        }
    }
    if out.is_empty() {
        "%00".to_string() // explicit empty marker
    } else {
        out
    }
}

fn dec(s: &str) -> Result<String, ParseError> {
    if s == "%00" {
        return Ok(String::new());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s
                .get(i + 1..i + 3)
                .ok_or_else(|| ParseError::new("truncated escape"))?;
            out.push(u8::from_str_radix(hex, 16).map_err(|_| ParseError::new("bad escape"))?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| ParseError::new("non-utf8 string"))
}

fn hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(2 * data.len());
    for b in data {
        let _ = write!(s, "{b:02x}");
    }
    if s.is_empty() {
        "-".into()
    } else {
        s
    }
}

fn unhex(s: &str) -> Result<Vec<u8>, ParseError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    if !s.len().is_multiple_of(2) {
        return Err(ParseError::new("odd hex length"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| ParseError::new("bad hex")))
        .collect()
}

/// A malformed trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line number, when known.
    pub line: usize,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
            line: 0,
        }
    }

    fn at(mut self, line: usize) -> Self {
        self.line = line;
        self
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error (line {}): {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn layer_str(l: Layer) -> &'static str {
    match l {
        Layer::App => "app",
        Layer::IoLib => "iolib",
        Layer::MpiIo => "mpiio",
        Layer::PfsClient => "pfsclient",
        Layer::PfsServer => "pfsserver",
        Layer::LocalFs => "localfs",
        Layer::Block => "block",
    }
}

fn parse_layer(s: &str) -> Result<Layer, ParseError> {
    Ok(match s {
        "app" => Layer::App,
        "iolib" => Layer::IoLib,
        "mpiio" => Layer::MpiIo,
        "pfsclient" => Layer::PfsClient,
        "pfsserver" => Layer::PfsServer,
        "localfs" => Layer::LocalFs,
        "block" => Layer::Block,
        other => return Err(ParseError::new(format!("unknown layer {other}"))),
    })
}

fn proc_str(p: Process) -> String {
    match p {
        Process::Client(r) => format!("c{r}"),
        Process::Server(s) => format!("s{s}"),
    }
}

fn parse_proc(s: &str) -> Result<Process, ParseError> {
    let (kind, num) = s.split_at(1);
    let n: u32 = num
        .parse()
        .map_err(|_| ParseError::new(format!("bad process {s}")))?;
    match kind {
        "c" => Ok(Process::Client(n)),
        "s" => Ok(Process::Server(n)),
        _ => Err(ParseError::new(format!("bad process {s}"))),
    }
}

fn fs_op_fields(op: &FsOp) -> Vec<String> {
    match op {
        FsOp::Creat { path } => vec!["creat".into(), enc(path)],
        FsOp::Mkdir { path } => vec!["mkdir".into(), enc(path)],
        FsOp::Pwrite { path, offset, data } => {
            vec!["pwrite".into(), enc(path), offset.to_string(), hex(data)]
        }
        FsOp::Append { path, data } => vec!["append".into(), enc(path), hex(data)],
        FsOp::Truncate { path, size } => vec!["truncate".into(), enc(path), size.to_string()],
        FsOp::Rename { src, dst } => vec!["rename".into(), enc(src), enc(dst)],
        FsOp::Link { src, dst } => vec!["link".into(), enc(src), enc(dst)],
        FsOp::Unlink { path } => vec!["unlink".into(), enc(path)],
        FsOp::Rmdir { path } => vec!["rmdir".into(), enc(path)],
        FsOp::SetXattr { path, key, value } => {
            vec!["setxattr".into(), enc(path), enc(key), hex(value)]
        }
        FsOp::RemoveXattr { path, key } => vec!["removexattr".into(), enc(path), enc(key)],
        FsOp::Fsync { path } => vec!["fsync".into(), enc(path)],
        FsOp::Fdatasync { path } => vec!["fdatasync".into(), enc(path)],
        FsOp::SyncFs => vec!["syncfs".into()],
    }
}

fn parse_fs_op(fields: &[&str]) -> Result<FsOp, ParseError> {
    let need = |n: usize| -> Result<(), ParseError> {
        if fields.len() < n + 1 {
            Err(ParseError::new("missing fs-op fields"))
        } else {
            Ok(())
        }
    };
    Ok(match fields[0] {
        "creat" => {
            need(1)?;
            FsOp::Creat {
                path: dec(fields[1])?,
            }
        }
        "mkdir" => {
            need(1)?;
            FsOp::Mkdir {
                path: dec(fields[1])?,
            }
        }
        "pwrite" => {
            need(3)?;
            FsOp::Pwrite {
                path: dec(fields[1])?,
                offset: fields[2]
                    .parse()
                    .map_err(|_| ParseError::new("bad offset"))?,
                data: unhex(fields[3])?,
            }
        }
        "append" => {
            need(2)?;
            FsOp::Append {
                path: dec(fields[1])?,
                data: unhex(fields[2])?,
            }
        }
        "truncate" => {
            need(2)?;
            FsOp::Truncate {
                path: dec(fields[1])?,
                size: fields[2].parse().map_err(|_| ParseError::new("bad size"))?,
            }
        }
        "rename" => {
            need(2)?;
            FsOp::Rename {
                src: dec(fields[1])?,
                dst: dec(fields[2])?,
            }
        }
        "link" => {
            need(2)?;
            FsOp::Link {
                src: dec(fields[1])?,
                dst: dec(fields[2])?,
            }
        }
        "unlink" => {
            need(1)?;
            FsOp::Unlink {
                path: dec(fields[1])?,
            }
        }
        "rmdir" => {
            need(1)?;
            FsOp::Rmdir {
                path: dec(fields[1])?,
            }
        }
        "setxattr" => {
            need(3)?;
            FsOp::SetXattr {
                path: dec(fields[1])?,
                key: dec(fields[2])?,
                value: unhex(fields[3])?,
            }
        }
        "removexattr" => {
            need(2)?;
            FsOp::RemoveXattr {
                path: dec(fields[1])?,
                key: dec(fields[2])?,
            }
        }
        "fsync" => {
            need(1)?;
            FsOp::Fsync {
                path: dec(fields[1])?,
            }
        }
        "fdatasync" => {
            need(1)?;
            FsOp::Fdatasync {
                path: dec(fields[1])?,
            }
        }
        "syncfs" => FsOp::SyncFs,
        other => return Err(ParseError::new(format!("unknown fs op {other}"))),
    })
}

fn tag_fields(tag: &StructTag) -> (String, String) {
    match tag {
        StructTag::LogFile => ("log".into(), "-".into()),
        StructTag::Inode(n) => ("inode".into(), enc(n)),
        StructTag::DirEntry(n) => ("dentry".into(), enc(n)),
        StructTag::AllocMap => ("alloc".into(), "-".into()),
        StructTag::FileContent(n) => ("content".into(), enc(n)),
        StructTag::Superblock => ("super".into(), "-".into()),
        StructTag::Other(n) => ("other".into(), enc(n)),
    }
}

fn parse_tag(kind: &str, name: &str) -> Result<StructTag, ParseError> {
    Ok(match kind {
        "log" => StructTag::LogFile,
        "inode" => StructTag::Inode(dec(name)?),
        "dentry" => StructTag::DirEntry(dec(name)?),
        "alloc" => StructTag::AllocMap,
        "content" => StructTag::FileContent(dec(name)?),
        "super" => StructTag::Superblock,
        "other" => StructTag::Other(dec(name)?),
        other => return Err(ParseError::new(format!("unknown tag {other}"))),
    })
}

fn payload_fields(p: &Payload) -> Vec<String> {
    match p {
        Payload::Call { name, args } => {
            let mut f = vec!["call".to_string(), enc(name), args.len().to_string()];
            f.extend(args.iter().map(|a| enc(a)));
            f
        }
        Payload::Fs { server, op } => {
            let mut f = vec!["fs".to_string(), server.to_string()];
            f.extend(fs_op_fields(op));
            f
        }
        Payload::Block { server, op } => match op {
            BlockOp::Write {
                lba,
                payload,
                tag,
                atomic_group,
            } => {
                let (k, n) = tag_fields(tag);
                vec![
                    "blockw".to_string(),
                    server.to_string(),
                    lba.to_string(),
                    k,
                    n,
                    atomic_group.map_or("-".into(), |g| g.to_string()),
                    hex(payload),
                ]
            }
            BlockOp::SyncCache => vec!["blocksync".to_string(), server.to_string()],
        },
        Payload::Send { to, msg } => vec!["send".to_string(), proc_str(*to), enc(msg)],
        Payload::Recv { from, msg } => vec!["recv".to_string(), proc_str(*from), enc(msg)],
        Payload::Sync { name } => vec!["sync".to_string(), enc(name)],
    }
}

fn parse_payload(fields: &[&str]) -> Result<Payload, ParseError> {
    let need = |n: usize| -> Result<(), ParseError> {
        if fields.len() < n + 1 {
            Err(ParseError::new("missing payload fields"))
        } else {
            Ok(())
        }
    };
    Ok(match fields[0] {
        "call" => {
            need(2)?;
            let name = dec(fields[1])?;
            let argc: usize = fields[2]
                .parse()
                .map_err(|_| ParseError::new("bad arg count"))?;
            need(2 + argc)?;
            let args = fields[3..3 + argc]
                .iter()
                .map(|a| dec(a))
                .collect::<Result<_, _>>()?;
            Payload::Call { name, args }
        }
        "fs" => {
            need(2)?;
            Payload::Fs {
                server: fields[1]
                    .parse()
                    .map_err(|_| ParseError::new("bad server"))?,
                op: parse_fs_op(&fields[2..])?,
            }
        }
        "blockw" => {
            need(6)?;
            Payload::Block {
                server: fields[1]
                    .parse()
                    .map_err(|_| ParseError::new("bad server"))?,
                op: BlockOp::Write {
                    lba: fields[2].parse().map_err(|_| ParseError::new("bad lba"))?,
                    tag: parse_tag(fields[3], fields[4])?,
                    atomic_group: if fields[5] == "-" {
                        None
                    } else {
                        Some(
                            fields[5]
                                .parse()
                                .map_err(|_| ParseError::new("bad group"))?,
                        )
                    },
                    payload: unhex(fields[6])?,
                },
            }
        }
        "blocksync" => {
            need(1)?;
            Payload::Block {
                server: fields[1]
                    .parse()
                    .map_err(|_| ParseError::new("bad server"))?,
                op: BlockOp::SyncCache,
            }
        }
        "send" => {
            need(2)?;
            Payload::Send {
                to: parse_proc(fields[1])?,
                msg: dec(fields[2])?,
            }
        }
        "recv" => {
            need(2)?;
            Payload::Recv {
                from: parse_proc(fields[1])?,
                msg: dec(fields[2])?,
            }
        }
        "sync" => {
            need(1)?;
            Payload::Sync {
                name: dec(fields[1])?,
            }
        }
        other => return Err(ParseError::new(format!("unknown payload {other}"))),
    })
}

/// Serialize a recorder into the combined trace-file format.
pub fn save(rec: &Recorder) -> String {
    let mut out = String::new();
    for e in rec.events() {
        let _ = write!(
            out,
            "E {} {} {} {} {}",
            e.id,
            layer_str(e.layer),
            proc_str(e.proc),
            e.parent.map_or("-".into(), |p| p.to_string()),
            e.object.as_deref().map_or("-".into(), enc),
        );
        for f in payload_fields(&e.payload) {
            let _ = write!(out, " {f}");
        }
        out.push('\n');
    }
    for &(from, to) in rec.extra_edges() {
        let _ = writeln!(out, "X {from} {to}");
    }
    out
}

/// Serialize per process — the original system's one-file-per-process
/// layout, plus a shared edges file. Keyed by process label (`c0`, `s1`).
pub fn save_per_process(rec: &Recorder) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = rec
        .per_process()
        .into_iter()
        .map(|(proc, ids)| {
            let mut text = String::new();
            for id in ids {
                let e = rec.event(id);
                let _ = write!(
                    text,
                    "E {} {} {} {} {}",
                    e.id,
                    layer_str(e.layer),
                    proc_str(e.proc),
                    e.parent.map_or("-".into(), |p| p.to_string()),
                    e.object.as_deref().map_or("-".into(), enc),
                );
                for f in payload_fields(&e.payload) {
                    let _ = write!(text, " {f}");
                }
                text.push('\n');
            }
            (proc_str(proc), text)
        })
        .collect();
    let mut edges = String::new();
    for &(from, to) in rec.extra_edges() {
        let _ = writeln!(edges, "X {from} {to}");
    }
    files.push(("edges".to_string(), edges));
    files
}

/// Parse a combined trace file (or the concatenation of per-process
/// files) back into a [`Recorder`]. Events may appear in any order; ids
/// must form a dense `0..n` range.
pub fn load(text: &str) -> Result<Recorder, ParseError> {
    let mut events: Vec<Option<Event>> = Vec::new();
    let mut edges: Vec<(EventId, EventId)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(' ').collect();
        match fields[0] {
            "E" => {
                if fields.len() < 6 {
                    return Err(ParseError::new("short event line").at(lineno + 1));
                }
                let id: EventId = fields[1]
                    .parse()
                    .map_err(|_| ParseError::new("bad id").at(lineno + 1))?;
                let layer = parse_layer(fields[2]).map_err(|e| e.at(lineno + 1))?;
                let proc = parse_proc(fields[3]).map_err(|e| e.at(lineno + 1))?;
                let parent = if fields[4] == "-" {
                    None
                } else {
                    Some(
                        fields[4]
                            .parse()
                            .map_err(|_| ParseError::new("bad parent").at(lineno + 1))?,
                    )
                };
                let object = if fields[5] == "-" {
                    None
                } else {
                    Some(dec(fields[5]).map_err(|e| e.at(lineno + 1))?)
                };
                let payload = parse_payload(&fields[6..]).map_err(|e| e.at(lineno + 1))?;
                if events.len() <= id {
                    events.resize(id + 1, None);
                }
                events[id] = Some(Event {
                    id,
                    layer,
                    proc,
                    payload,
                    parent,
                    object,
                });
            }
            "X" => {
                if fields.len() != 3 {
                    return Err(ParseError::new("short edge line").at(lineno + 1));
                }
                let from = fields[1]
                    .parse()
                    .map_err(|_| ParseError::new("bad edge").at(lineno + 1))?;
                let to = fields[2]
                    .parse()
                    .map_err(|_| ParseError::new("bad edge").at(lineno + 1))?;
                edges.push((from, to));
            }
            other => return Err(ParseError::new(format!("unknown record {other}")).at(lineno + 1)),
        }
    }
    let mut rec = Recorder::new();
    for (i, ev) in events.into_iter().enumerate() {
        let ev = ev.ok_or_else(|| ParseError::new(format!("missing event id {i}")))?;
        let id = rec.record(ev.layer, ev.proc, ev.payload, ev.parent);
        debug_assert_eq!(id, i);
        if let Some(obj) = ev.object {
            rec.set_object(id, obj);
        }
    }
    for (from, to) in edges {
        if from >= rec.len() || to >= rec.len() {
            return Err(ParseError::new("edge references missing event"));
        }
        rec.add_edge(from, to);
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Recorder {
        let mut rec = Recorder::new();
        let c = rec.record(
            Layer::PfsClient,
            Process::Client(0),
            Payload::Call {
                name: "creat".into(),
                args: vec!["/a file".into(), "len=3".into()],
            },
            None,
        );
        let s = rec.record(
            Layer::PfsClient,
            Process::Client(0),
            Payload::Send {
                to: Process::Server(1),
                msg: "CREAT /a file".into(),
            },
            Some(c),
        );
        let r = rec.record(
            Layer::PfsServer,
            Process::Server(1),
            Payload::Recv {
                from: Process::Client(0),
                msg: "CREAT /a file".into(),
            },
            Some(s),
        );
        rec.record_labeled(
            Layer::LocalFs,
            Process::Server(1),
            Payload::Fs {
                server: 1,
                op: FsOp::Pwrite {
                    path: "/chunks/f0.0".into(),
                    offset: 8,
                    data: vec![0, 255, 17],
                },
            },
            Some(r),
            "data chunks of g1/d1",
        );
        rec.record(
            Layer::Block,
            Process::Server(2),
            Payload::Block {
                server: 2,
                op: BlockOp::write_in_group(42, StructTag::DirEntry("root dir".into()), vec![9], 3),
            },
            None,
        );
        rec.record(
            Layer::MpiIo,
            Process::Client(1),
            Payload::Sync {
                name: "MPI_Barrier".into(),
            },
            None,
        );
        rec.add_edge(0, 5);
        rec
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let rec = sample();
        let text = save(&rec);
        let back = load(&text).expect("parses");
        assert_eq!(rec.len(), back.len());
        for (a, b) in rec.events().iter().zip(back.events()) {
            assert_eq!(a, b);
        }
        assert_eq!(rec.extra_edges(), back.extra_edges());
    }

    #[test]
    fn per_process_files_concatenate_back() {
        let rec = sample();
        let files = save_per_process(&rec);
        assert!(files.iter().any(|(n, _)| n == "c0"));
        assert!(files.iter().any(|(n, _)| n == "s1"));
        let combined: String = files.into_iter().map(|(_, t)| t).collect();
        let back = load(&combined).expect("parses");
        assert_eq!(rec.events(), back.events());
    }

    #[test]
    fn strings_with_spaces_and_percent_roundtrip() {
        assert_eq!(dec(&enc("a b%c\nd")).unwrap(), "a b%c\nd");
        assert_eq!(dec(&enc("")).unwrap(), "");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = load("E bogus").unwrap_err();
        assert_eq!(err.line, 1);
        let err = load("E 0 localfs s0 - - fs 0 creat /x\nQ what").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(
            load("E 1 localfs s0 - - fs 0 creat /x").is_err(),
            "gap in ids"
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let rec = sample();
        let text = format!("# trace file\n\n{}", save(&rec));
        assert_eq!(load(&text).unwrap().len(), rec.len());
    }
}
