//! The multi-layer causality graph (§4.2).
//!
//! Nodes are trace events; edges are (a) program order within each process
//! (single-threaded clients and servers, as in the paper), (b)
//! caller–callee links across layers, and (c) explicit sender–receiver /
//! synchronization edges. `happens_before` is reachability, computed once
//! as a transitive closure over bitsets — traces are small (tens to a few
//! hundred events per test program), so the dense closure is both simple
//! and fast.

use crate::event::{EventId, Recorder};

/// A fixed-capacity bitset used for reachability rows and for representing
/// crash states (sets of persisted operations).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Insert element `i`.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Remove element `i`.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Union-assign.
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Difference-assign.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `true` if `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.contains(i))
    }

    /// Build from an iterator of members.
    pub fn from_iter(len: usize, items: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// The causality graph over a recorded trace.
#[derive(Debug, Clone)]
pub struct CausalityGraph {
    n: usize,
    /// `succ[i]` = direct successors of event `i`.
    succ: Vec<Vec<EventId>>,
    /// `reach[i]` = every event reachable from `i` (excluding `i`).
    reach: Vec<BitSet>,
}

impl CausalityGraph {
    /// Build the graph from a recorder: program order per process,
    /// caller–callee edges, and the recorder's explicit extra edges.
    pub fn build(rec: &Recorder) -> Self {
        let n = rec.len();
        let mut succ: Vec<Vec<EventId>> = vec![Vec::new(); n];
        // Program order within each process.
        for (_, ids) in rec.per_process() {
            for w in ids.windows(2) {
                succ[w[0]].push(w[1]);
            }
        }
        // Caller–callee.
        for e in rec.events() {
            if let Some(p) = e.parent {
                succ[p].push(e.id);
            }
        }
        // Sender–receiver and synchronization edges.
        for &(from, to) in rec.extra_edges() {
            succ[from].push(to);
        }
        for s in &mut succ {
            s.sort_unstable();
            s.dedup();
        }
        // Transitive closure in reverse topological order. Events are
        // recorded chronologically and every edge goes forward in time, so
        // id order is already topological.
        let mut reach: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for i in (0..n).rev() {
            // Clone out to appease the borrow checker; rows are small.
            let mut row = BitSet::new(n);
            for &j in &succ[i] {
                debug_assert!(j > i, "causal edges must go forward in time");
                row.insert(j);
                row.union_with(&reach[j]);
            }
            reach[i] = row;
        }
        CausalityGraph { n, succ, reach }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the graph has no events.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The happens-before partial order: `true` iff `a` precedes `b`.
    pub fn happens_before(&self, a: EventId, b: EventId) -> bool {
        self.reach[a].contains(b)
    }

    /// `true` if neither happens before the other.
    pub fn concurrent(&self, a: EventId, b: EventId) -> bool {
        a != b && !self.happens_before(a, b) && !self.happens_before(b, a)
    }

    /// Direct successors of `a`.
    pub fn successors(&self, a: EventId) -> &[EventId] {
        &self.succ[a]
    }

    /// Every event that must precede `a` (its causal history).
    pub fn history(&self, a: EventId) -> BitSet {
        let mut h = BitSet::new(self.n);
        for i in 0..self.n {
            if self.happens_before(i, a) {
                h.insert(i);
            }
        }
        h
    }

    /// Check whether `set` is a *consistent cut* restricted to the given
    /// universe: no event outside `set` (within `universe`) happens before
    /// an event inside `set`.
    pub fn is_consistent_cut(&self, set: &BitSet, universe: &[EventId]) -> bool {
        for &inside in universe.iter().filter(|&&e| set.contains(e)) {
            for &outside in universe.iter().filter(|&&e| !set.contains(e)) {
                if self.happens_before(outside, inside) {
                    return false;
                }
            }
        }
        true
    }

    /// Enumerate every consistent cut (order ideal) of the partial order
    /// restricted to `universe`, as bitsets over event ids. This is step 2
    /// of Algorithm 1 ("all consistent cuts of the causality graph").
    ///
    /// Enumeration is by recursive extension in topological (id) order
    /// with memoized antichain frontiers; traces in this reproduction are
    /// small enough that the ideal lattice stays tractable, exactly as in
    /// the paper (hundreds to thousands of states).
    pub fn consistent_cuts(&self, universe: &[EventId]) -> Vec<BitSet> {
        let mut cuts = Vec::new();
        let mut current = BitSet::new(self.n);
        self.extend_cut(universe, 0, &mut current, &mut cuts);
        cuts
    }

    fn extend_cut(
        &self,
        universe: &[EventId],
        idx: usize,
        current: &mut BitSet,
        out: &mut Vec<BitSet>,
    ) {
        if idx == universe.len() {
            out.push(current.clone());
            return;
        }
        let e = universe[idx];
        // Option 1: exclude `e` — then every later event that causally
        // depends on `e` must also be excluded.
        // Option 2: include `e` — only legal if all its predecessors in
        // the universe are included (they are, because we scan in id order
        // and edges go forward).
        let preds_ok = universe[..idx]
            .iter()
            .all(|&p| !self.happens_before(p, e) || current.contains(p));
        if preds_ok {
            current.insert(e);
            self.extend_cut(universe, idx + 1, current, out);
            current.remove(e);
        }
        // Excluding is always allowed, but downstream events blocked by
        // `e` will be pruned by their own `preds_ok` check.
        self.extend_cut(universe, idx + 1, current, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Layer, Payload, Process, Recorder};

    fn call(name: &str) -> Payload {
        Payload::Call {
            name: name.into(),
            args: vec![],
        }
    }

    /// Figure 5 of the paper: P0 does write(A); send; write(B).
    /// P1 does recv; write(C); fsync.
    fn figure5() -> (Recorder, [EventId; 6]) {
        let mut r = Recorder::new();
        let (p0, p1) = (Process::Client(0), Process::Client(1));
        let wa = r.record(Layer::App, p0, call("write_A"), None);
        let snd = r.record(
            Layer::App,
            p0,
            Payload::Send {
                to: p1,
                msg: "buf".into(),
            },
            None,
        );
        let wb = r.record(Layer::App, p0, call("write_B"), None);
        let rcv = r.record(
            Layer::App,
            p1,
            Payload::Recv {
                from: p0,
                msg: "buf".into(),
            },
            None,
        );
        let wc = r.record(Layer::App, p1, call("write_C"), None);
        let fs = r.record(Layer::App, p1, call("fsync"), None);
        r.add_edge(snd, rcv);
        (r, [wa, snd, wb, rcv, wc, fs])
    }

    #[test]
    fn program_order_and_message_edges() {
        let (r, [wa, snd, wb, _rcv, wc, fs]) = figure5();
        let g = CausalityGraph::build(&r);
        assert!(g.happens_before(wa, wb));
        assert!(g.happens_before(wa, wc)); // via send/recv
        assert!(g.happens_before(snd, fs));
        assert!(g.concurrent(wb, wc)); // no path either way
        assert!(!g.happens_before(wc, wa));
    }

    #[test]
    fn caller_callee_edges() {
        let mut r = Recorder::new();
        let top = r.record(Layer::IoLib, Process::Client(0), call("H5Dcreate"), None);
        let low = r.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: simfs::FsOp::Creat { path: "/c".into() },
            },
            Some(top),
        );
        let g = CausalityGraph::build(&r);
        assert!(g.happens_before(top, low));
    }

    #[test]
    fn history_is_downward_closed() {
        let (r, [wa, snd, _, rcv, wc, _]) = figure5();
        let g = CausalityGraph::build(&r);
        let h = g.history(wc);
        assert!(h.contains(wa) && h.contains(snd) && h.contains(rcv));
        assert!(!h.contains(wc));
    }

    #[test]
    fn consistent_cuts_of_figure5() {
        let (r, ids) = figure5();
        let g = CausalityGraph::build(&r);
        let universe: Vec<_> = ids.to_vec();
        let cuts = g.consistent_cuts(&universe);
        // Every cut must be consistent; the empty and full cuts exist.
        assert!(cuts.iter().all(|c| g.is_consistent_cut(c, &universe)));
        assert!(cuts.iter().any(|c| c.count() == 0));
        assert!(cuts.iter().any(|c| c.count() == universe.len()));
        // A cut containing recv but not send is inconsistent and must not
        // be enumerated.
        assert!(!cuts
            .iter()
            .any(|c| c.contains(ids[3]) && !c.contains(ids[1])));
        // Two independent chains of 3: the ideal count of this particular
        // poset. Chains: wa->snd->wb, rcv->wc->fs with snd->rcv.
        // Count ideals by brute force for confidence.
        let mut brute = 0;
        for mask in 0u32..(1 << 6) {
            let set = BitSet::from_iter(r.len(), (0..6).filter(|i| mask >> i & 1 == 1));
            if g.is_consistent_cut(&set, &universe) {
                brute += 1;
            }
        }
        assert_eq!(cuts.len(), brute);
    }

    #[test]
    fn bitset_basics() {
        let mut a = BitSet::new(130);
        a.insert(0);
        a.insert(64);
        a.insert(129);
        assert_eq!(a.count(), 3);
        assert!(a.contains(64));
        a.remove(64);
        assert!(!a.contains(64));
        let b = BitSet::from_iter(130, [0, 129]);
        assert!(b.is_subset(&a));
        assert!(a.is_subset(&a));
        let mut c = BitSet::new(130);
        c.insert(5);
        assert!(c.is_disjoint(&a));
        c.union_with(&a);
        assert_eq!(c.count(), 3);
        c.subtract(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn empty_graph() {
        let g = CausalityGraph::build(&Recorder::new());
        assert!(g.is_empty());
        assert_eq!(g.consistent_cuts(&[]).len(), 1);
    }
}
