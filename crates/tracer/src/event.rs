//! Trace events and the recorder.
//!
//! One [`Event`] corresponds to one line of a per-process trace file in
//! the original system (timestamp + call + arguments). Events carry:
//!
//! * the **layer** they were traced at ([`Layer`]) — ParaCrash projects
//!   the graph onto single layers to generate per-layer legal states;
//! * the **process** that executed them ([`Process`]);
//! * a **payload** — either an upper-layer call (with name/args, like
//!   `H5Dcreate(dataset)` or `MPI_File_write_at(fh, 800, 88)`), a
//!   lowermost-level local-FS or block operation, or a communication
//!   (`sendto` / `recvfrom`);
//! * an optional **parent** (caller–callee edge) and an optional semantic
//!   **object label** (which I/O-library data structure the bytes belong
//!   to — `superblock`, `btree`, `local heap`… — used by the semantic
//!   pruning of §5.3 and the bug aggregation of §5.2).

use simfs::{BlockOp, FsOp};
use std::fmt;

/// Index of an event in its [`Recorder`].
pub type EventId = usize;

/// The I/O-stack layer an event was traced at (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// The application / test program.
    App,
    /// Parallel I/O library (HDF5, NetCDF).
    IoLib,
    /// MPI-IO middleware.
    MpiIo,
    /// Parallel-file-system client call (POSIX API against the PFS mount).
    PfsClient,
    /// PFS server-side processing (RPC handlers).
    PfsServer,
    /// Lowermost level for user-level PFS: local-FS syscalls on a server.
    LocalFs,
    /// Lowermost level for kernel-level PFS: block commands on a server.
    Block,
}

impl Layer {
    /// `true` for the lowermost storage layers whose operations ParaCrash
    /// replays during crash emulation.
    pub fn is_lowermost(&self) -> bool {
        matches!(self, Layer::LocalFs | Layer::Block)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Layer::App => "app",
            Layer::IoLib => "iolib",
            Layer::MpiIo => "mpiio",
            Layer::PfsClient => "pfs-client",
            Layer::PfsServer => "pfs-server",
            Layer::LocalFs => "localfs",
            Layer::Block => "block",
        };
        f.write_str(s)
    }
}

/// A traced process: an application client (MPI rank) or a PFS server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Process {
    /// Application client / MPI rank.
    Client(u32),
    /// PFS server process, indexed into the cluster's server table.
    Server(u32),
}

impl fmt::Display for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Process::Client(r) => write!(f, "client#{r}"),
            Process::Server(s) => write!(f, "server#{s}"),
        }
    }
}

/// What an event records.
///
/// Fields are the traced call arguments (name/args), the executing
/// server and operation, or the communication peer and message.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Upper-layer function call (I/O library, MPI-IO, PFS client API).
    Call { name: String, args: Vec<String> },
    /// Lowermost POSIX operation on `server`'s local file system.
    Fs { server: u32, op: FsOp },
    /// Lowermost block command on `server`'s disk.
    Block { server: u32, op: BlockOp },
    /// `sendto(peer)` — message departure.
    Send { to: Process, msg: String },
    /// `recvfrom(peer)` — message arrival.
    Recv { from: Process, msg: String },
    /// Synchronization marker (e.g. `MPI_Barrier`).
    Sync { name: String },
}

impl Payload {
    /// `true` if this payload is a lowermost-level storage update
    /// (participates in crash-state generation).
    pub fn is_storage_update(&self) -> bool {
        match self {
            Payload::Fs { op, .. } => op.is_update(),
            Payload::Block { op, .. } => op.is_update(),
            _ => false,
        }
    }

    /// `true` if this payload is a lowermost-level commit operation.
    pub fn is_storage_sync(&self) -> bool {
        match self {
            Payload::Fs { op, .. } => op.is_sync(),
            Payload::Block { op, .. } => op.is_sync(),
            _ => false,
        }
    }
}

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Position in the recorder — also the global chronological timestamp
    /// (the simulation is deterministic and single-threaded).
    pub id: EventId,
    /// Layer the event was traced at.
    pub layer: Layer,
    /// Process that executed it.
    pub proc: Process,
    /// What happened.
    pub payload: Payload,
    /// Caller event (one layer up), if any — the caller–callee edge.
    pub parent: Option<EventId>,
    /// Semantic object label (I/O-library structure the bytes belong to).
    pub object: Option<String>,
}

impl Event {
    /// Short single-line rendering, mirroring trace-file lines.
    pub fn render(&self) -> String {
        let body = match &self.payload {
            Payload::Call { name, args } => format!("{name}({})", args.join(", ")),
            Payload::Fs { server, op } => format!("{op}@server#{server}"),
            Payload::Block { server, op } => format!("{op}@server#{server}"),
            Payload::Send { to, msg } => format!("sendto({to}, {msg})"),
            Payload::Recv { from, msg } => format!("recvfrom({from}, {msg})"),
            Payload::Sync { name } => format!("{name}()"),
        };
        match &self.object {
            Some(obj) => format!("[{}] {} {} <{obj}>", self.layer, self.proc, body),
            None => format!("[{}] {} {}", self.layer, self.proc, body),
        }
    }
}

/// Collects events from every simulated layer and the extra causal edges
/// that cannot be derived from program order (sender→receiver pairs,
/// barrier fan-in/fan-out).
#[derive(Debug, Default, Clone)]
pub struct Recorder {
    events: Vec<Event>,
    /// Additional happens-before edges `(from, to)`.
    extra_edges: Vec<(EventId, EventId)>,
}

impl Recorder {
    /// Fresh empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an event; returns its id.
    pub fn record(
        &mut self,
        layer: Layer,
        proc: Process,
        payload: Payload,
        parent: Option<EventId>,
    ) -> EventId {
        let id = self.events.len();
        self.events.push(Event {
            id,
            layer,
            proc,
            payload,
            parent,
            object: None,
        });
        id
    }

    /// Record an event with a semantic object label.
    pub fn record_labeled(
        &mut self,
        layer: Layer,
        proc: Process,
        payload: Payload,
        parent: Option<EventId>,
        object: impl Into<String>,
    ) -> EventId {
        let id = self.record(layer, proc, payload, parent);
        self.events[id].object = Some(object.into());
        id
    }

    /// Add an explicit happens-before edge (sender→receiver, sync).
    pub fn add_edge(&mut self, from: EventId, to: EventId) {
        self.extra_edges.push((from, to));
    }

    /// Attach / replace the semantic object label of an event.
    pub fn set_object(&mut self, id: EventId, object: impl Into<String>) {
        self.events[id].object = Some(object.into());
    }

    /// All events in chronological order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The explicit extra edges.
    pub fn extra_edges(&self) -> &[(EventId, EventId)] {
        &self.extra_edges
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Event lookup.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id]
    }

    /// Ids of all events at `layer`.
    pub fn layer_events(&self, layer: Layer) -> Vec<EventId> {
        self.events
            .iter()
            .filter(|e| e.layer == layer)
            .map(|e| e.id)
            .collect()
    }

    /// Ids of all lowermost-level events (local-FS + block), the input to
    /// Algorithm 1.
    pub fn lowermost_events(&self) -> Vec<EventId> {
        self.events
            .iter()
            .filter(|e| e.layer.is_lowermost())
            .map(|e| e.id)
            .collect()
    }

    /// The per-process trace files of §5.1: events grouped by process,
    /// preserving chronological order — what Recorder/strace would have
    /// produced, one file per process.
    pub fn per_process(&self) -> Vec<(Process, Vec<EventId>)> {
        let mut procs: Vec<Process> = self.events.iter().map(|e| e.proc).collect();
        procs.sort();
        procs.dedup();
        procs
            .into_iter()
            .map(|p| {
                (
                    p,
                    self.events
                        .iter()
                        .filter(|e| e.proc == p)
                        .map(|e| e.id)
                        .collect(),
                )
            })
            .collect()
    }

    /// Render the whole trace (for the Figure 9–style harnesses).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("#{:<4} {}\n", e.id, e.render()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str) -> Payload {
        Payload::Call {
            name: name.into(),
            args: vec![],
        }
    }

    #[test]
    fn record_assigns_sequential_ids() {
        let mut r = Recorder::new();
        let a = r.record(Layer::App, Process::Client(0), call("open"), None);
        let b = r.record(Layer::App, Process::Client(0), call("close"), Some(a));
        assert_eq!((a, b), (0, 1));
        assert_eq!(r.event(b).parent, Some(a));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn layer_projection_and_lowermost() {
        let mut r = Recorder::new();
        r.record(Layer::App, Process::Client(0), call("x"), None);
        let fs = r.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: FsOp::Creat { path: "/f".into() },
            },
            None,
        );
        let blk = r.record(
            Layer::Block,
            Process::Server(1),
            Payload::Block {
                server: 1,
                op: BlockOp::SyncCache,
            },
            None,
        );
        assert_eq!(r.layer_events(Layer::App), vec![0]);
        assert_eq!(r.lowermost_events(), vec![fs, blk]);
        assert!(r.event(fs).payload.is_storage_update());
        assert!(!r.event(blk).payload.is_storage_update());
        assert!(r.event(blk).payload.is_storage_sync());
    }

    #[test]
    fn per_process_groups_in_order() {
        let mut r = Recorder::new();
        r.record(Layer::App, Process::Client(1), call("a"), None);
        r.record(Layer::App, Process::Client(0), call("b"), None);
        r.record(Layer::App, Process::Client(1), call("c"), None);
        let groups = r.per_process();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, Process::Client(0));
        assert_eq!(groups[0].1, vec![1]);
        assert_eq!(groups[1].1, vec![0, 2]);
    }

    #[test]
    fn labels_render() {
        let mut r = Recorder::new();
        let id = r.record_labeled(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: FsOp::Creat { path: "/c0".into() },
            },
            None,
            "btree",
        );
        assert!(r.event(id).render().contains("<btree>"));
        assert!(r.render().contains("creat(/c0)"));
    }
}
