//! NetCDF-style wrapper over the HDF5-like format.
//!
//! NetCDF 4.x stores its variables in HDF5 files (Table 2: NetCDF 4.7.5,
//! "HDF5 format"). The paper's `CDF-create` / `CDF-rename` test programs
//! exercise exactly this wrapper: a *variable* create becomes a dataset
//! create in the file's root group, and corruption of the underlying
//! format surfaces to the application as the infamous
//! `NetCDF: HDF5 error [Errno -101]` (Table 3 bug 15's consequence).

use crate::call::H5Trace;
use crate::file::{H5File, H5Spec};
use crate::format::{check, H5Error, H5Logical};
use mpiio::MpiIo;
use std::fmt;

/// A NetCDF error as the application sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NcError {
    /// The underlying HDF5 failure.
    pub cause: H5Error,
}

impl fmt::Display for NcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NetCDF: HDF5 error [Errno -101] ({})", self.cause)
    }
}

impl std::error::Error for NcError {}

/// An open NetCDF file (HDF5 format underneath).
#[derive(Debug, Clone)]
pub struct NcFile {
    h5: H5File,
}

impl NcFile {
    /// `nc_create`.
    pub fn create(mpi: &mut MpiIo, h5t: &mut H5Trace, ranks: &[u32], path: &str) -> NcFile {
        NcFile {
            h5: H5File::create(mpi, h5t, ranks, path, H5Spec::default()),
        }
    }

    /// Access the underlying HDF5 file.
    pub fn h5(&mut self) -> &mut H5File {
        &mut self.h5
    }

    /// `nc_def_var` + fill: variables are root-group datasets.
    pub fn create_variable(
        &mut self,
        mpi: &mut MpiIo,
        h5t: &mut H5Trace,
        rank: u32,
        name: &str,
        rows: u64,
        cols: u64,
    ) {
        self.h5
            .create_dataset(mpi, h5t, rank, "/", name, rows, cols);
    }

    /// `nc_rename_var`: an in-place name update — a single heap record
    /// write, atomic on every file system (the paper found no CDF-rename
    /// bugs).
    pub fn rename_variable(
        &mut self,
        mpi: &mut MpiIo,
        h5t: &mut H5Trace,
        rank: u32,
        old: &str,
        new: &str,
    ) {
        self.h5
            .rename_dataset_in_place(mpi, h5t, rank, "/", old, new);
    }

    /// `nc_close`.
    pub fn close(&mut self, mpi: &mut MpiIo, h5t: &mut H5Trace, ranks: &[u32]) {
        self.h5.close(mpi, h5t, ranks);
    }
}

/// Open a NetCDF file image, mapping HDF5 failures to the NetCDF error.
pub fn nc_check(bytes: &[u8]) -> Result<H5Logical, NcError> {
    check(bytes).map_err(|cause| NcError { cause })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfs::ext4::Ext4Direct;
    use pfs::{ClientTrace, Pfs};
    use tracer::Recorder;

    #[test]
    fn variables_are_root_datasets() {
        let mut fs = Ext4Direct::paper_default();
        let mut rec = Recorder::new();
        let mut ct = ClientTrace::new();
        let mut h5t = H5Trace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut ct);
        let mut nc = NcFile::create(&mut mpi, &mut h5t, &[0], "/data.nc");
        nc.create_variable(&mut mpi, &mut h5t, 0, "temperature", 20, 20);
        nc.rename_variable(&mut mpi, &mut h5t, 0, "temperature", "temp");
        nc.close(&mut mpi, &mut h5t, &[0]);
        let bytes = fs.client_view(fs.live()).read("/data.nc").unwrap().to_vec();
        let logical = nc_check(&bytes).unwrap();
        assert!(logical.has_dataset("/", "temp"));
        assert!(!logical.has_dataset("/", "temperature"));
    }

    #[test]
    fn corruption_surfaces_as_netcdf_error() {
        let err = nc_check(b"garbage").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("NetCDF: HDF5 error"));
        assert!(msg.contains("-101"));
    }
}
