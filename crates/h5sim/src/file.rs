//! The HDF5-like library runtime: `H5File`.
//!
//! Every operation updates the in-memory structure bookkeeping, then
//! flushes the affected structures into the file through MPI-IO —
//! **in the order HDF5 1.8's metadata cache flushes them**, which for
//! `delete`, `rename`, parallel `create` and B-tree splits is exactly
//! the vulnerable order reported in Table 3 (bugs 9, 11, 12, 14). For
//! `create` and `resize` the issue order is dependency-correct, so the
//! corresponding crash bugs (10, 13, 15) only appear when the PFS
//! underneath reorders persistence across servers — which is how the
//! paper pinpoints their root cause to the PFS layer.

use crate::call::{H5Call, H5Trace};
use crate::format::{encode, sizes, superblock};
use mpiio::MpiIo;
use std::collections::BTreeMap;
use tracer::{EventId, Layer, Payload, Process};

/// Deterministic fill pattern for dataset content.
fn fill_byte(name: &str, i: u64) -> u8 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h ^ i.wrapping_mul(2654435761)) as u8
}

/// Library tuning knobs (kept explicit so ablation benches can vary
/// them; the defaults match the paper's HDF5 1.8 + h5py setup).
#[derive(Debug, Clone, Copy)]
pub struct H5Spec {
    /// Bytes per element (f64 in the paper's datasets).
    pub elem: u64,
    /// Data segment size.
    pub seg: u64,
}

impl Default for H5Spec {
    fn default() -> Self {
        H5Spec {
            elem: sizes::ELEM,
            seg: sizes::SEG,
        }
    }
}

#[derive(Debug, Clone)]
struct GroupRt {
    oh: u64,
    tree: u64,
    heap: u64,
    snod: u64,
    /// (heap offset, name) records currently in the heap.
    names: Vec<(u64, String)>,
    /// (heap offset, object header) symbol-table entries.
    entries: Vec<(u64, u64)>,
    heap_next: u64,
}

impl GroupRt {
    /// Heap offset of the name record for `name` that still has a live
    /// symbol-table entry. `rename_dataset` frees heap records lazily,
    /// so a stale record with the same name can precede a re-created
    /// one in `names`; lookups must resolve through `entries`, never
    /// through the heap alone.
    fn live_offset(&self, name: &str) -> Option<u64> {
        self.names
            .iter()
            .find(|(off, n)| n == name && self.entries.iter().any(|(o, _)| o == off))
            .map(|(off, _)| *off)
    }
}

#[derive(Debug, Clone)]
struct DatasetRt {
    oh: u64,
    rows: u64,
    cols: u64,
    dtree: u64,
    /// Leaf data segments `(addr, len)` in order.
    segs: Vec<(u64, u64)>,
    /// Child B-tree nodes after a split (empty while the root is a leaf).
    children: Vec<u64>,
}

/// An open HDF5-like file over the simulated stack.
#[derive(Debug, Clone)]
pub struct H5File {
    /// PFS path of the file.
    pub path: String,
    spec: H5Spec,
    eof: u64,
    root_oh: u64,
    groups: BTreeMap<String, GroupRt>,
    datasets: BTreeMap<String, DatasetRt>,
}

impl H5File {
    fn alloc(&mut self, size: u64) -> u64 {
        let a = self.eof;
        self.eof += size;
        a
    }

    fn iolib_event(mpi: &mut MpiIo, rank: u32, call: &H5Call) -> EventId {
        mpi.recorder().record(
            Layer::IoLib,
            Process::Client(rank),
            Payload::Call {
                name: call.name().into(),
                args: call.args(),
            },
            None,
        )
    }

    /// Flush one structure into the file, tagged with its object label —
    /// the label drives ParaCrash's semantic pruning and bug
    /// classification.
    fn flush(
        &self,
        mpi: &mut MpiIo,
        rank: u32,
        addr: u64,
        bytes: Vec<u8>,
        label: &str,
        parent: EventId,
    ) {
        let ev = mpi.file_write_at(rank, &self.path, addr, &bytes, Some(parent));
        mpi.recorder().set_object(ev, label);
    }

    fn flush_superblock(&self, mpi: &mut MpiIo, rank: u32, parent: EventId) {
        self.flush(
            mpi,
            rank,
            0,
            superblock::encode(self.root_oh, self.eof, 1),
            "superblock",
            parent,
        );
    }

    fn flush_group(&self, mpi: &mut MpiIo, rank: u32, group: &str, what: Flush, parent: EventId) {
        let g = &self.groups[group];
        match what {
            Flush::Heap => self.flush(
                mpi,
                rank,
                g.heap,
                encode::heap(&g.names),
                &format!("local heap of {group}"),
                parent,
            ),
            Flush::Tree => self.flush(
                mpi,
                rank,
                g.tree,
                encode::tree(&[g.snod]),
                &format!("B-tree node of {group}"),
                parent,
            ),
            Flush::Snod => self.flush(
                mpi,
                rank,
                g.snod,
                encode::snod(&g.entries),
                &format!("symbol table node of {group}"),
                parent,
            ),
            Flush::Ohdr => self.flush(
                mpi,
                rank,
                g.oh,
                encode::group_ohdr(g.tree, g.heap),
                &format!("object header of {group}"),
                parent,
            ),
        }
    }

    /// Create the file: superblock + empty root group. Collective.
    pub fn create(
        mpi: &mut MpiIo,
        h5t: &mut H5Trace,
        ranks: &[u32],
        path: &str,
        spec: H5Spec,
    ) -> H5File {
        let call = H5Call::CreateFile;
        let ev = Self::iolib_event(mpi, ranks[0], &call);
        h5t.push(ev, ranks[0], call);
        mpi.file_open(ranks, path, true, Some(ev));
        let mut f = H5File {
            path: path.to_string(),
            spec,
            eof: sizes::SUPERBLOCK,
            root_oh: 0,
            groups: BTreeMap::new(),
            datasets: BTreeMap::new(),
        };
        let oh = f.alloc(sizes::OHDR);
        let tree = f.alloc(sizes::TREE);
        let heap = f.alloc(sizes::HEAP);
        let snod = f.alloc(sizes::SNOD);
        f.root_oh = oh;
        f.groups.insert(
            "/".to_string(),
            GroupRt {
                oh,
                tree,
                heap,
                snod,
                names: Vec::new(),
                entries: Vec::new(),
                heap_next: 8,
            },
        );
        let rank = ranks[0];
        f.flush_superblock(mpi, rank, ev);
        f.flush_group(mpi, rank, "/", Flush::Ohdr, ev);
        f.flush_group(mpi, rank, "/", Flush::Heap, ev);
        f.flush_group(mpi, rank, "/", Flush::Tree, ev);
        f.flush_group(mpi, rank, "/", Flush::Snod, ev);
        f
    }

    /// Reopen an existing file (no writes).
    pub fn open(&self, mpi: &mut MpiIo, ranks: &[u32]) {
        mpi.file_open(ranks, &self.path, false, None);
    }

    /// Close the file. Collective.
    pub fn close(&mut self, mpi: &mut MpiIo, h5t: &mut H5Trace, ranks: &[u32]) {
        let call = H5Call::CloseFile;
        let ev = Self::iolib_event(mpi, ranks[0], &call);
        h5t.push(ev, ranks[0], call);
        self.flush(
            mpi,
            ranks[0],
            0,
            superblock::encode(self.root_oh, self.eof, 0),
            "superblock",
            ev,
        );
        mpi.file_close(ranks, &self.path, Some(ev));
    }

    fn add_name(&mut self, group: &str, name: &str, oh: u64) {
        let g = self.groups.get_mut(group).expect("group exists");
        let off = g.heap_next;
        g.heap_next += (2 + name.len() as u64 + 7) & !7;
        g.names.push((off, name.to_string()));
        g.entries.push((off, oh));
        g.entries.sort_unstable();
    }

    fn remove_name(&mut self, group: &str, name: &str) -> Option<(u64, u64)> {
        let g = self.groups.get_mut(group).expect("group exists");
        let off = g.live_offset(name)?;
        g.names.retain(|(o, _)| *o != off);
        let entry = g.entries.iter().find(|(o, _)| *o == off).copied();
        g.entries.retain(|(o, _)| *o != off);
        entry
    }

    /// `H5Gcreate`: create a top-level group.
    pub fn create_group(&mut self, mpi: &mut MpiIo, h5t: &mut H5Trace, rank: u32, group: &str) {
        let call = H5Call::CreateGroup {
            group: group.into(),
        };
        let ev = Self::iolib_event(mpi, rank, &call);
        h5t.push(ev, rank, call);
        let oh = self.alloc(sizes::OHDR);
        let tree = self.alloc(sizes::TREE);
        let heap = self.alloc(sizes::HEAP);
        let snod = self.alloc(sizes::SNOD);
        self.groups.insert(
            group.to_string(),
            GroupRt {
                oh,
                tree,
                heap,
                snod,
                names: Vec::new(),
                entries: Vec::new(),
                heap_next: 8,
            },
        );
        self.add_name("/", group, oh);
        // Dependency-correct flush order: space first, then the new
        // group's structures, then the root structures that reference it.
        self.flush_superblock(mpi, rank, ev);
        self.flush_group(mpi, rank, group, Flush::Heap, ev);
        self.flush_group(mpi, rank, group, Flush::Tree, ev);
        self.flush_group(mpi, rank, group, Flush::Snod, ev);
        self.flush_group(mpi, rank, group, Flush::Ohdr, ev);
        self.flush_group(mpi, rank, "/", Flush::Heap, ev);
        self.flush_group(mpi, rank, "/", Flush::Tree, ev);
        self.flush_group(mpi, rank, "/", Flush::Snod, ev);
    }

    fn alloc_dataset(
        &mut self,
        name: &str,
        rows: u64,
        cols: u64,
    ) -> (DatasetRt, Vec<(u64, Vec<u8>)>) {
        let total = rows * cols * self.spec.elem;
        let oh = self.alloc(sizes::OHDR);
        let dtree = self.alloc(sizes::DTRE);
        let mut segs = Vec::new();
        let mut seg_payloads = Vec::new();
        let mut written = 0u64;
        let mut idx = 0u64;
        while written < total {
            let len = self.spec.seg.min(total - written);
            let addr = self.alloc(len);
            segs.push((addr, len));
            let bytes: Vec<u8> = (0..len)
                .map(|i| fill_byte(name, idx * self.spec.seg + i))
                .collect();
            seg_payloads.push((addr, bytes));
            written += len;
            idx += 1;
        }
        // A dataset too large for one leaf is born split.
        let children = (0..Self::needed_children(segs.len()))
            .map(|_| self.alloc(sizes::DTRE))
            .collect();
        (
            DatasetRt {
                oh,
                rows,
                cols,
                dtree,
                segs,
                children,
            },
            seg_payloads,
        )
    }

    /// Number of child nodes a dataset of `nsegs` segments needs
    /// (0 while a single leaf suffices).
    fn needed_children(nsegs: usize) -> usize {
        if nsegs <= sizes::DTRE_CAP {
            0
        } else {
            nsegs.div_ceil(sizes::DTRE_CAP)
        }
    }

    /// Flush the children of a split dataset B-tree (segments spread
    /// evenly over the child leaves).
    fn flush_dataset_children(&self, mpi: &mut MpiIo, rank: u32, key: &str, parent: EventId) {
        let d = &self.datasets[key];
        if d.children.is_empty() {
            return;
        }
        let per_child = d.segs.len().div_ceil(d.children.len());
        debug_assert_eq!(
            d.segs.chunks(per_child).count(),
            d.children.len(),
            "segment distribution must fill every child node"
        );
        for (child, segs) in d.children.iter().zip(d.segs.chunks(per_child)) {
            self.flush(
                mpi,
                rank,
                *child,
                encode::dtree(true, segs),
                &format!("child B-tree node of dataset {key}"),
                parent,
            );
        }
    }

    fn flush_dataset_tree(&self, mpi: &mut MpiIo, rank: u32, key: &str, parent: EventId) {
        let d = &self.datasets[key];
        if d.children.is_empty() {
            self.flush(
                mpi,
                rank,
                d.dtree,
                encode::dtree(true, &d.segs),
                &format!("B-tree node of dataset {key}"),
                parent,
            );
        } else {
            let child_entries: Vec<(u64, u64)> = d.children.iter().map(|&c| (c, 0)).collect();
            self.flush(
                mpi,
                rank,
                d.dtree,
                encode::dtree(false, &child_entries),
                &format!("parent B-tree node of dataset {key}"),
                parent,
            );
        }
    }

    fn flush_dataset_ohdr(&self, mpi: &mut MpiIo, rank: u32, key: &str, parent: EventId) {
        let d = &self.datasets[key];
        self.flush(
            mpi,
            rank,
            d.oh,
            encode::dataset_ohdr(d.rows, d.cols, d.dtree),
            &format!("object header of dataset {key}"),
            parent,
        );
    }

    /// `H5Dcreate` + fill, single rank.
    ///
    /// Flush order (dependency-correct — HDF5 gets this one right, so
    /// the crash hazard here is the *PFS* reordering persistence across
    /// servers; Table 3 bug 10 / 13 / 15 mechanics):
    /// superblock → data → dataset B-tree → dataset header →
    /// heap → group B-tree → symbol table node.
    #[allow(clippy::too_many_arguments)] // mirrors the HDF5 API signature
    pub fn create_dataset(
        &mut self,
        mpi: &mut MpiIo,
        h5t: &mut H5Trace,
        rank: u32,
        group: &str,
        name: &str,
        rows: u64,
        cols: u64,
    ) {
        let call = H5Call::CreateDataset {
            group: group.into(),
            name: name.into(),
            rows,
            cols,
        };
        let ev = Self::iolib_event(mpi, rank, &call);
        h5t.push(ev, rank, call);
        let key = crate::format::dataset_key(group, name);
        let (ds, payloads) = self.alloc_dataset(&key, rows, cols);
        let oh = ds.oh;
        self.datasets.insert(key.clone(), ds);
        self.add_name(group, name, oh);

        self.flush_superblock(mpi, rank, ev);
        for (addr, bytes) in payloads {
            self.flush(mpi, rank, addr, bytes, &format!("data chunks of {key}"), ev);
        }
        // Creation writes B-tree children before the parent — the
        // dependency-correct order (contrast with the resize split).
        self.flush_dataset_children(mpi, rank, &key, ev);
        self.flush_dataset_tree(mpi, rank, &key, ev);
        self.flush_dataset_ohdr(mpi, rank, &key, ev);
        self.flush_group(mpi, rank, group, Flush::Heap, ev);
        self.flush_group(mpi, rank, group, Flush::Tree, ev);
        self.flush_group(mpi, rank, group, Flush::Snod, ev);
    }

    /// Collective `H5Dcreate` across ranks.
    ///
    /// HDF5 1.8's collective metadata path splits the flushes across
    /// ranks with no ordering between them: rank 0 writes everything
    /// *except* the local heap, which rank 1 flushes concurrently —
    /// so the group B-tree / symbol table can persist without the heap
    /// even on a causally-consistent PFS. That concurrency is Table 3
    /// bug 9 (sensitivity: number of clients).
    #[allow(clippy::too_many_arguments)] // mirrors the HDF5 API signature
    pub fn create_dataset_parallel(
        &mut self,
        mpi: &mut MpiIo,
        h5t: &mut H5Trace,
        ranks: &[u32],
        group: &str,
        name: &str,
        rows: u64,
        cols: u64,
    ) {
        if ranks.len() < 2 {
            return self.create_dataset(mpi, h5t, ranks[0], group, name, rows, cols);
        }
        let call = H5Call::CreateDatasetParallel {
            group: group.into(),
            name: name.into(),
            rows,
            cols,
            nranks: ranks.len() as u32,
        };
        let ev = Self::iolib_event(mpi, ranks[0], &call);
        h5t.push(ev, ranks[0], call);
        let key = crate::format::dataset_key(group, name);
        let (ds, payloads) = self.alloc_dataset(&key, rows, cols);
        let oh = ds.oh;
        self.datasets.insert(key.clone(), ds);
        self.add_name(group, name, oh);

        let r0 = ranks[0];
        let r1 = ranks[1];
        self.flush_superblock(mpi, r0, ev);
        // Data segments are distributed round-robin over ranks.
        for (i, (addr, bytes)) in payloads.into_iter().enumerate() {
            let r = ranks[i % ranks.len()];
            self.flush(mpi, r, addr, bytes, &format!("data chunks of {key}"), ev);
        }
        self.flush_dataset_children(mpi, r0, &key, ev);
        self.flush_dataset_tree(mpi, r0, &key, ev);
        self.flush_dataset_ohdr(mpi, r0, &key, ev);
        self.flush_group(mpi, r0, group, Flush::Tree, ev);
        self.flush_group(mpi, r0, group, Flush::Snod, ev);
        // The heap flush happens on another rank, concurrent with the
        // B-tree/symbol-table flushes above.
        self.flush_group(mpi, r1, group, Flush::Heap, ev);
    }

    /// `H5Ldelete`.
    ///
    /// HDF5 1.8 flushes the shrunken B-tree and heap *before* the
    /// symbol-table node — the wrong order (the old symbol table then
    /// references a freed heap slot). A crash between the flushes breaks
    /// every dataset in the group: Table 3 bug 11.
    pub fn delete_dataset(
        &mut self,
        mpi: &mut MpiIo,
        h5t: &mut H5Trace,
        rank: u32,
        group: &str,
        name: &str,
    ) {
        let call = H5Call::DeleteDataset {
            group: group.into(),
            name: name.into(),
        };
        let ev = Self::iolib_event(mpi, rank, &call);
        h5t.push(ev, rank, call);
        let key = crate::format::dataset_key(group, name);
        self.remove_name(group, name);
        self.datasets.remove(&key);
        self.flush_group(mpi, rank, group, Flush::Tree, ev);
        self.flush_group(mpi, rank, group, Flush::Heap, ev);
        self.flush_group(mpi, rank, group, Flush::Snod, ev);
    }

    /// `H5Lmove`: move a dataset between groups.
    ///
    /// Six structures across two groups must change together; HDF5
    /// flushes the source group's removal first, so a crash in between
    /// loses the renamed dataset entirely: Table 3 bug 12.
    #[allow(clippy::too_many_arguments)] // mirrors the HDF5 API signature
    pub fn rename_dataset(
        &mut self,
        mpi: &mut MpiIo,
        h5t: &mut H5Trace,
        rank: u32,
        src_group: &str,
        src_name: &str,
        dst_group: &str,
        dst_name: &str,
    ) {
        let call = H5Call::RenameDataset {
            src_group: src_group.into(),
            src_name: src_name.into(),
            dst_group: dst_group.into(),
            dst_name: dst_name.into(),
        };
        let ev = Self::iolib_event(mpi, rank, &call);
        h5t.push(ev, rank, call);
        let src_key = crate::format::dataset_key(src_group, src_name);
        let dst_key = crate::format::dataset_key(dst_group, dst_name);
        // Remove the symbol-table entry but leave the heap record in
        // place (HDF5 frees heap space lazily): a crash mid-rename loses
        // the dataset being moved, but never breaks lookups of the
        // *other* datasets — which is why the paper classifies rename as
        // a causal (not baseline) violation.
        let oh = {
            let g = self.groups.get_mut(src_group).expect("group exists");
            let off = g.live_offset(src_name).expect("renamed dataset exists");
            let entry = g
                .entries
                .iter()
                .find(|(o, _)| *o == off)
                .map(|(_, oh)| *oh)
                .expect("entry exists");
            g.entries.retain(|(o, _)| *o != off);
            entry
        };
        if let Some(ds) = self.datasets.remove(&src_key) {
            self.datasets.insert(dst_key, ds);
        }
        // Source-side removal flushes…
        self.flush_group(mpi, rank, src_group, Flush::Tree, ev);
        self.flush_group(mpi, rank, src_group, Flush::Snod, ev);
        // …then destination-side insertion flushes.
        self.add_name(dst_group, dst_name, oh);
        self.flush_group(mpi, rank, dst_group, Flush::Heap, ev);
        self.flush_group(mpi, rank, dst_group, Flush::Tree, ev);
        self.flush_group(mpi, rank, dst_group, Flush::Snod, ev);
    }

    /// Rename a dataset *in place*: overwrite its heap name record at the
    /// same offset (NetCDF's `nc_rename_var` path — a single heap flush,
    /// atomic on any FS, which is why the paper's CDF-rename exposed no
    /// bugs). Panics if the new name does not fit the old slot.
    #[allow(clippy::too_many_arguments)] // mirrors the HDF5 API signature
    pub fn rename_dataset_in_place(
        &mut self,
        mpi: &mut MpiIo,
        h5t: &mut H5Trace,
        rank: u32,
        group: &str,
        old: &str,
        new: &str,
    ) {
        let call = H5Call::RenameDataset {
            src_group: group.into(),
            src_name: old.into(),
            dst_group: group.into(),
            dst_name: new.into(),
        };
        let ev = Self::iolib_event(mpi, rank, &call);
        h5t.push(ev, rank, call);
        let slot = (2 + old.len() + 7) & !7;
        assert!(
            2 + new.len() <= slot,
            "in-place rename requires the new name to fit the heap slot"
        );
        {
            let g = self.groups.get_mut(group).expect("group exists");
            let off = g.live_offset(old).expect("renamed dataset exists");
            let entry = g
                .names
                .iter_mut()
                .find(|(o, _)| *o == off)
                .expect("live name record exists");
            entry.1 = new.to_string();
        }
        let old_key = crate::format::dataset_key(group, old);
        let new_key = crate::format::dataset_key(group, new);
        if let Some(ds) = self.datasets.remove(&old_key) {
            self.datasets.insert(new_key, ds);
        }
        self.flush_group(mpi, rank, group, Flush::Heap, ev);
    }

    /// Shared implementation of serial / parallel resize.
    #[allow(clippy::too_many_arguments)] // mirrors the HDF5 API signature
    fn resize_impl(
        &mut self,
        mpi: &mut MpiIo,
        ranks: &[u32],
        ev: EventId,
        group: &str,
        name: &str,
        rows: u64,
        cols: u64,
    ) {
        let key = crate::format::dataset_key(group, name);
        let total = rows * cols * self.spec.elem;
        let have: u64 = self.datasets[&key].segs.iter().map(|s| s.1).sum();
        let mut new_payloads = Vec::new();
        let mut idx = self.datasets[&key].segs.len() as u64;
        let mut written = have;
        while written < total {
            let len = self.spec.seg.min(total - written);
            let addr = self.alloc(len);
            let bytes: Vec<u8> = (0..len)
                .map(|i| fill_byte(&key, idx * self.spec.seg + i))
                .collect();
            new_payloads.push((addr, bytes));
            self.datasets.get_mut(&key).unwrap().segs.push((addr, len));
            written += len;
            idx += 1;
        }
        let d = self.datasets.get_mut(&key).unwrap();
        d.rows = rows;
        d.cols = cols;
        let needed = Self::needed_children(d.segs.len());
        let needs_split = needed > d.children.len();

        let r0 = ranks[0];
        // Dependency-correct start: superblock (new EOF) first, then the
        // data (bug 13's hazard is the PFS reordering these across
        // servers).
        self.flush_superblock(mpi, r0, ev);
        for (i, (addr, bytes)) in new_payloads.into_iter().enumerate() {
            let r = ranks[i % ranks.len()];
            self.flush(mpi, r, addr, bytes, &format!("data chunks of {key}"), ev);
        }
        if needs_split {
            // Split into child leaves. HDF5 1.8 flushes the *parent*
            // first and the children after — the wrong order (bug 14):
            // a crash in between leaves the parent pointing at unwritten
            // child nodes ("wrong B-tree signature").
            let fresh: Vec<u64> = (self.datasets[&key].children.len()..needed)
                .map(|_| self.alloc(sizes::DTRE))
                .collect();
            // Growing the file again: flush the superblock once more
            // (still before the structures that use the space).
            self.flush_superblock(mpi, r0, ev);
            self.datasets.get_mut(&key).unwrap().children.extend(fresh);
            self.flush_dataset_tree(mpi, r0, &key, ev); // parent first (bug)
            self.flush_dataset_children(mpi, r0, &key, ev);
        } else if self.datasets[&key].children.is_empty() {
            self.flush_dataset_tree(mpi, r0, &key, ev);
        } else {
            // Already split: rewrite the parent, then the children whose
            // segment lists shifted (same vulnerable order).
            self.flush_dataset_tree(mpi, r0, &key, ev);
            self.flush_dataset_children(mpi, r0, &key, ev);
        }
        self.flush_dataset_ohdr(mpi, r0, &key, ev);
    }

    /// `H5Dset_extent`, single rank.
    #[allow(clippy::too_many_arguments)] // mirrors the HDF5 API signature
    pub fn resize_dataset(
        &mut self,
        mpi: &mut MpiIo,
        h5t: &mut H5Trace,
        rank: u32,
        group: &str,
        name: &str,
        rows: u64,
        cols: u64,
    ) {
        let call = H5Call::ResizeDataset {
            group: group.into(),
            name: name.into(),
            rows,
            cols,
        };
        let ev = Self::iolib_event(mpi, rank, &call);
        h5t.push(ev, rank, call);
        self.resize_impl(mpi, &[rank], ev, group, name, rows, cols);
    }

    /// Collective `H5Dset_extent`.
    #[allow(clippy::too_many_arguments)] // mirrors the HDF5 API signature
    pub fn resize_dataset_parallel(
        &mut self,
        mpi: &mut MpiIo,
        h5t: &mut H5Trace,
        ranks: &[u32],
        group: &str,
        name: &str,
        rows: u64,
        cols: u64,
    ) {
        let call = H5Call::ResizeDatasetParallel {
            group: group.into(),
            name: name.into(),
            rows,
            cols,
            nranks: ranks.len() as u32,
        };
        let ev = Self::iolib_event(mpi, ranks[0], &call);
        h5t.push(ev, ranks[0], call);
        self.resize_impl(mpi, ranks, ev, group, name, rows, cols);
    }

    /// Current end-of-file (allocation high-water mark).
    pub fn eof(&self) -> u64 {
        self.eof
    }

    /// Names of datasets currently in `group` (live symbol-table
    /// entries only — stale lazily-freed heap records are skipped).
    pub fn dataset_names(&self, group: &str) -> Vec<String> {
        self.groups
            .get(group)
            .map(|g| {
                g.names
                    .iter()
                    .filter(|(off, _)| g.entries.iter().any(|(o, _)| o == off))
                    .map(|(_, n)| n.clone())
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[derive(Clone, Copy)]
enum Flush {
    Heap,
    Tree,
    Snod,
    Ohdr,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::check;
    use pfs::ext4::Ext4Direct;
    use pfs::{ClientTrace, Pfs};
    use tracer::Recorder;

    /// Build a file with two groups / two datasets (the paper's common
    /// initial state) on a single ext4 store and return the raw bytes.
    fn build(dims: u64) -> (Ext4Direct, H5File) {
        let mut fs = Ext4Direct::paper_default();
        let mut rec = Recorder::new();
        let mut ct = ClientTrace::new();
        let mut h5t = H5Trace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut ct);
        let mut f = H5File::create(&mut mpi, &mut h5t, &[0], "/file.h5", H5Spec::default());
        f.create_group(&mut mpi, &mut h5t, 0, "g1");
        f.create_group(&mut mpi, &mut h5t, 0, "g2");
        f.create_dataset(&mut mpi, &mut h5t, 0, "g1", "d1", dims, dims);
        f.create_dataset(&mut mpi, &mut h5t, 0, "g1", "d2", dims, dims);
        f.close(&mut mpi, &mut h5t, &[0]);
        (fs, f)
    }

    fn bytes_of(fs: &Ext4Direct) -> Vec<u8> {
        fs.client_view(fs.live()).read("/file.h5").unwrap().to_vec()
    }

    #[test]
    fn fresh_file_checks_clean() {
        let (fs, _) = build(20);
        let logical = check(&bytes_of(&fs)).expect("clean file");
        assert_eq!(
            logical.groups.keys().cloned().collect::<Vec<_>>(),
            vec!["/", "g1", "g2"]
        );
        assert!(logical.has_dataset("g1", "d1"));
        assert!(logical.has_dataset("g1", "d2"));
        assert!(!logical.has_dataset("g2", "d1"));
    }

    #[test]
    fn delete_removes_dataset() {
        let (mut fs, mut f) = build(20);
        let mut rec = Recorder::new();
        let mut ct = ClientTrace::new();
        let mut h5t = H5Trace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut ct);
        f.delete_dataset(&mut mpi, &mut h5t, 0, "g1", "d2");
        let logical = check(&bytes_of(&fs)).expect("clean after delete");
        assert!(logical.has_dataset("g1", "d1"));
        assert!(!logical.has_dataset("g1", "d2"));
    }

    #[test]
    fn rename_moves_between_groups() {
        let (mut fs, mut f) = build(20);
        let mut rec = Recorder::new();
        let mut ct = ClientTrace::new();
        let mut h5t = H5Trace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut ct);
        f.rename_dataset(&mut mpi, &mut h5t, 0, "g1", "d2", "g2", "dx");
        let logical = check(&bytes_of(&fs)).expect("clean after rename");
        assert!(!logical.has_dataset("g1", "d2"));
        assert!(logical.has_dataset("g2", "dx"));
    }

    #[test]
    fn stale_heap_record_does_not_shadow_recreated_name() {
        // Regression: rename frees heap records lazily, so after
        // renaming g1/d1 away and re-creating g1/d1, the group heap
        // holds TWO "d1" records — only the second has a live
        // symbol-table entry. A second rename of g1/d1 used to match
        // the stale record and panic on the missing entry.
        let (mut fs, mut f) = build(20);
        let mut rec = Recorder::new();
        let mut ct = ClientTrace::new();
        let mut h5t = H5Trace::new();
        {
            let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut ct);
            f.rename_dataset(&mut mpi, &mut h5t, 0, "g1", "d1", "g2", "d1");
            f.create_dataset(&mut mpi, &mut h5t, 0, "g1", "d1", 20, 20);
            f.rename_dataset(&mut mpi, &mut h5t, 0, "g1", "d1", "g2", "dx");
        }
        let logical = check(&bytes_of(&fs)).expect("clean after double rename");
        assert!(!logical.has_dataset("g1", "d1"));
        assert!(logical.has_dataset("g2", "d1"));
        assert!(logical.has_dataset("g2", "dx"));
        assert_eq!(f.dataset_names("g1"), vec!["d2".to_string()]);
        // Deleting a re-created name must also resolve to the live
        // record, not the stale one.
        {
            let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut ct);
            f.create_dataset(&mut mpi, &mut h5t, 0, "g1", "d1", 20, 20);
            f.delete_dataset(&mut mpi, &mut h5t, 0, "g1", "d1");
        }
        let logical = check(&bytes_of(&fs)).expect("clean after delete of recreated name");
        assert!(!logical.has_dataset("g1", "d1"));
        assert!(logical.has_dataset("g2", "d1"));
    }

    #[test]
    fn resize_grows_dataset() {
        let (mut fs, mut f) = build(20);
        let mut rec = Recorder::new();
        let mut ct = ClientTrace::new();
        let mut h5t = H5Trace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut ct);
        f.resize_dataset(&mut mpi, &mut h5t, 0, "g1", "d1", 40, 40);
        let logical = check(&bytes_of(&fs)).expect("clean after resize");
        assert_eq!(logical.datasets["g1/d1"].0, 40);
    }

    #[test]
    fn large_resize_splits_btree() {
        // Keep memory small: tiny segments force the split with small
        // dims. leaf cap is 96 → 97 segments split.
        let mut fs = Ext4Direct::paper_default();
        let mut rec = Recorder::new();
        let mut ct = ClientTrace::new();
        let mut h5t = H5Trace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut ct);
        let spec = H5Spec { elem: 8, seg: 64 };
        let mut f = H5File::create(&mut mpi, &mut h5t, &[0], "/file.h5", spec);
        f.create_group(&mut mpi, &mut h5t, 0, "g1");
        f.create_dataset(&mut mpi, &mut h5t, 0, "g1", "d1", 8, 8); // 512 B = 8 segs
        f.resize_dataset(&mut mpi, &mut h5t, 0, "g1", "d1", 30, 30); // 7200 B = 113 segs
        let logical = check(&bytes_of(&fs)).expect("split file still clean");
        assert_eq!(logical.datasets["g1/d1"].0, 30);
        assert!(!f.datasets["g1/d1"].children.is_empty());
    }

    #[test]
    fn parallel_create_heap_flush_is_on_second_rank() {
        let (mut fs, mut f) = build(20);
        let mut rec = Recorder::new();
        let mut ct = ClientTrace::new();
        let mut h5t = H5Trace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut ct);
        f.create_dataset_parallel(&mut mpi, &mut h5t, &[0, 1], "g1", "d3", 20, 20);
        let heap_write = rec
            .events()
            .iter()
            .find(|e| {
                e.object.as_deref() == Some("local heap of g1")
                    && matches!(e.payload, Payload::Call { .. })
            })
            .expect("heap flush traced");
        assert_eq!(heap_write.proc, Process::Client(1));
        assert!(check(&bytes_of(&fs)).is_ok());
    }

    #[test]
    fn structure_writes_carry_object_labels() {
        let (_, _) = build(20); // build succeeds
        let mut fs = Ext4Direct::paper_default();
        let mut rec = Recorder::new();
        let mut ct = ClientTrace::new();
        let mut h5t = H5Trace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut ct);
        let mut f = H5File::create(&mut mpi, &mut h5t, &[0], "/x.h5", H5Spec::default());
        f.create_group(&mut mpi, &mut h5t, 0, "g");
        let labels: std::collections::BTreeSet<String> = rec
            .events()
            .iter()
            .filter_map(|e| e.object.clone())
            .collect();
        assert!(labels.contains("superblock"));
        assert!(labels.iter().any(|l| l.starts_with("local heap")));
        assert!(labels.iter().any(|l| l.starts_with("B-tree node")));
        assert!(labels.iter().any(|l| l.starts_with("symbol table node")));
    }
}
