//! The HDF5 tool suite: `h5clear`, `h5inspect`, `h5replay`.
//!
//! * `h5clear` — the repair tool ParaCrash runs before declaring a crash
//!   state inconsistent (§4.4.3). Its option set is the sensitivity knob
//!   of Table 3 bug 13: with `--increase-eof` it can repair the
//!   superblock-vs-B-tree "addr overflow" states; without it it cannot.
//! * `h5inspect` — maps every internal object to its byte range in the
//!   file and renders the map as JSON (§5.2); the object map feeds the
//!   semantic pruning of §5.3.
//! * `h5replay` — replays a preserved set of I/O-library calls on a
//!   fresh stack to produce a legal golden state (§5.1; the original
//!   generates and compiles a C program, we drive the library directly).

use crate::call::{H5Call, H5Trace};
use crate::file::{H5File, H5Spec};
use crate::format::{self, check, H5Error, H5Logical};
use crate::json::Json;
use mpiio::MpiIo;
use pfs::{ClientTrace, Pfs};
use std::collections::BTreeSet;
use tracer::Recorder;

/// `h5clear` options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClearOpts {
    /// `--increase-eof`: set the superblock EOF to the physical file
    /// size, repairing addr-overflow states.
    pub increase_eof: bool,
}

/// `h5clear`: clear the superblock status flags (and optionally repair
/// the EOF). Returns the repaired image; returns the input unchanged if
/// the superblock is unreadable.
pub fn h5clear(bytes: &[u8], opts: ClearOpts) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if out.len() < format::sizes::SUPERBLOCK as usize || &out[0..4] != b"H5SB" {
        return out;
    }
    out[5] = 0; // status flags
    if opts.increase_eof {
        let eof = out.len() as u64;
        out[16..24].copy_from_slice(&eof.to_le_bytes());
    }
    out
}

/// One entry of the `h5inspect` object map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectRange {
    /// Structure name ("superblock", "B-tree node of g1", …).
    pub name: String,
    /// Byte offset in the file.
    pub addr: u64,
    /// Structure length.
    pub len: u64,
    /// `true` for dataset data (the semantic-pruning predicate: data
    /// chunk updates "will not be reordered", §5.3).
    pub is_data: bool,
}

/// `h5inspect`: map internal objects to byte ranges.
pub fn h5inspect(bytes: &[u8]) -> Result<Vec<ObjectRange>, H5Error> {
    use format::sizes;
    // Validate first — an unreadable file has no object map.
    let _ = check(bytes)?;
    let mut out = vec![ObjectRange {
        name: "superblock".into(),
        addr: 0,
        len: sizes::SUPERBLOCK,
        is_data: false,
    }];
    let root_oh = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    inspect_group(bytes, "/", root_oh, &mut out);
    out.sort_by_key(|o| o.addr);
    Ok(out)
}

fn rd_u64(b: &[u8], at: u64) -> u64 {
    u64::from_le_bytes(b[at as usize..at as usize + 8].try_into().unwrap())
}

fn rd_u16(b: &[u8], at: u64) -> u16 {
    u16::from_le_bytes(b[at as usize..at as usize + 2].try_into().unwrap())
}

fn inspect_group(b: &[u8], gname: &str, oh: u64, out: &mut Vec<ObjectRange>) {
    use format::sizes;
    out.push(ObjectRange {
        name: format!("object header of {gname}"),
        addr: oh,
        len: sizes::OHDR,
        is_data: false,
    });
    let btree = rd_u64(b, oh + 8);
    let heap = rd_u64(b, oh + 16);
    out.push(ObjectRange {
        name: format!("B-tree node of {gname}"),
        addr: btree,
        len: sizes::TREE,
        is_data: false,
    });
    out.push(ObjectRange {
        name: format!("local heap of {gname}"),
        addr: heap,
        len: sizes::HEAP,
        is_data: false,
    });
    let nsnod = rd_u16(b, btree + 4) as usize;
    for s in 0..nsnod {
        let snod = rd_u64(b, btree + 8 + (s as u64) * 8);
        out.push(ObjectRange {
            name: format!("symbol table node of {gname}"),
            addr: snod,
            len: sizes::SNOD,
            is_data: false,
        });
        let n = rd_u16(b, snod + 4) as usize;
        for i in 0..n {
            let ea = snod + 8 + (i as u64) * 16;
            let name_off = rd_u64(b, ea);
            let child_oh = rd_u64(b, ea + 8);
            let nlen = rd_u16(b, heap + name_off) as u64;
            let name = String::from_utf8_lossy(
                &b[(heap + name_off + 2) as usize..(heap + name_off + 2 + nlen) as usize],
            )
            .to_string();
            let kind = b[(child_oh + 4) as usize];
            if kind == format::KIND_GROUP {
                inspect_group(b, &name, child_oh, out);
            } else {
                let key = format::dataset_key(gname, &name);
                out.push(ObjectRange {
                    name: format!("object header of dataset {key}"),
                    addr: child_oh,
                    len: sizes::OHDR,
                    is_data: false,
                });
                let dtree = rd_u64(b, child_oh + 24);
                inspect_dtree(b, &key, dtree, out);
            }
        }
    }
}

fn inspect_dtree(b: &[u8], key: &str, addr: u64, out: &mut Vec<ObjectRange>) {
    use format::sizes;
    out.push(ObjectRange {
        name: format!("B-tree node of dataset {key}"),
        addr,
        len: sizes::DTRE,
        is_data: false,
    });
    let leaf = b[(addr + 4) as usize];
    let n = rd_u16(b, addr + 5) as usize;
    for i in 0..n {
        let ea = addr + 8 + (i as u64) * 16;
        let a = rd_u64(b, ea);
        let l = rd_u64(b, ea + 8);
        if leaf == 1 {
            out.push(ObjectRange {
                name: format!("data chunks of {key}"),
                addr: a,
                len: l,
                is_data: true,
            });
        } else {
            inspect_dtree(b, key, a, out);
        }
    }
}

/// Render an object map as the JSON document `h5inspect` writes.
pub fn inspect_to_json(map: &[ObjectRange]) -> String {
    Json::Arr(
        map.iter()
            .map(|o| {
                Json::Obj(vec![
                    ("object".into(), Json::Str(o.name.clone())),
                    ("addr".into(), Json::Int(o.addr)),
                    ("len".into(), Json::Int(o.len)),
                    ("is_data".into(), Json::Bool(o.is_data)),
                ])
            })
            .collect(),
    )
    .pretty()
}

/// Render a preserved set of I/O-library calls as the C replay program
/// the original `h5replay` generates and compiles (§5.1: "it creates a C
/// program containing the HDF5 function calls and their dependent
/// statements, and executes the generated program"). This reproduction
/// drives the library directly, but emits the same artifact for
/// inspection and documentation.
pub fn render_replay_program(path: &str, calls: &[(u32, H5Call)]) -> String {
    let mut c = String::new();
    c.push_str("#include <hdf5.h>\n#include <mpi.h>\n\n");
    c.push_str("int main(int argc, char **argv) {\n");
    c.push_str("    MPI_Init(&argc, &argv);\n");
    c.push_str("    hid_t fapl = H5Pcreate(H5P_FILE_ACCESS);\n");
    c.push_str("    H5Pset_fapl_mpio(fapl, MPI_COMM_WORLD, MPI_INFO_NULL);\n");
    let mut file_open = false;
    for (i, (rank, call)) in calls.iter().enumerate() {
        let _ = rank;
        match call {
            H5Call::CreateFile => {
                c.push_str(&format!(
                    "    hid_t file = H5Fcreate(\"{path}\", H5F_ACC_TRUNC, H5P_DEFAULT, fapl);\n"
                ));
                file_open = true;
            }
            H5Call::CreateGroup { group } => {
                c.push_str(&format!(
                    "    hid_t g{i} = H5Gcreate(file, \"{group}\", H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);\n"
                ));
            }
            H5Call::CreateDataset {
                group,
                name,
                rows,
                cols,
            }
            | H5Call::CreateDatasetParallel {
                group,
                name,
                rows,
                cols,
                ..
            } => {
                c.push_str(&format!(
                    "    {{ hsize_t dims{i}[2] = {{{rows}, {cols}}};\n\
                     \x20     hid_t sp{i} = H5Screate_simple(2, dims{i}, NULL);\n\
                     \x20     hid_t d{i} = H5Dcreate(file, \"/{group}/{name}\", H5T_NATIVE_DOUBLE, sp{i}, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);\n\
                     \x20     H5Dclose(d{i}); H5Sclose(sp{i}); }}\n"
                ));
            }
            H5Call::ResizeDataset {
                group,
                name,
                rows,
                cols,
            }
            | H5Call::ResizeDatasetParallel {
                group,
                name,
                rows,
                cols,
                ..
            } => {
                c.push_str(&format!(
                    "    {{ hsize_t ext{i}[2] = {{{rows}, {cols}}};\n\
                     \x20     hid_t d{i} = H5Dopen(file, \"/{group}/{name}\", H5P_DEFAULT);\n\
                     \x20     H5Dset_extent(d{i}, ext{i}); H5Dclose(d{i}); }}\n"
                ));
            }
            H5Call::DeleteDataset { group, name } => {
                c.push_str(&format!(
                    "    H5Ldelete(file, \"/{group}/{name}\", H5P_DEFAULT);\n"
                ));
            }
            H5Call::RenameDataset {
                src_group,
                src_name,
                dst_group,
                dst_name,
            } => {
                c.push_str(&format!(
                    "    H5Lmove(file, \"/{src_group}/{src_name}\", file, \"/{dst_group}/{dst_name}\", H5P_DEFAULT, H5P_DEFAULT);\n"
                ));
            }
            H5Call::CloseFile => {
                c.push_str("    H5Fclose(file);\n");
                file_open = false;
            }
        }
    }
    if file_open {
        c.push_str("    H5Fclose(file);\n");
    }
    c.push_str("    H5Pclose(fapl);\n    MPI_Finalize();\n    return 0;\n}\n");
    c
}

/// Why a replay could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The call sequence is not executable (missing prerequisite).
    Invalid(String),
    /// The produced image failed `h5check`.
    Check(H5Error),
    /// The stack produced no readable file.
    NoFile,
}

/// `h5replay`: execute a sequence of I/O-library calls on a *fresh* PFS
/// and return the resulting logical state. Used to materialize legal
/// golden states from preserved sets; sequences that are not executable
/// (e.g. a resize whose create was dropped) are rejected — they denote
/// no legal state.
pub fn h5replay(
    pfs: &mut dyn Pfs,
    path: &str,
    ranks: &[u32],
    calls: &[(u32, H5Call)],
) -> Result<H5Logical, ReplayError> {
    h5replay_with(pfs, path, ranks, calls, H5Spec::default())
}

/// [`h5replay`] with an explicit library configuration — the replay must
/// use the same allocation geometry as the traced run.
pub fn h5replay_with(
    pfs: &mut dyn Pfs,
    path: &str,
    ranks: &[u32],
    calls: &[(u32, H5Call)],
    spec: H5Spec,
) -> Result<H5Logical, ReplayError> {
    let mut rec = Recorder::new();
    let mut ct = ClientTrace::new();
    let mut h5t = H5Trace::new();
    let mut file: Option<H5File> = None;
    let mut groups: BTreeSet<String> = BTreeSet::new();
    let mut datasets: BTreeSet<String> = BTreeSet::new();
    for (rank, call) in calls {
        let mut mpi = MpiIo::new(pfs, &mut rec, &mut ct);
        match call {
            H5Call::CreateFile => {
                if file.is_some() {
                    return Err(ReplayError::Invalid("file created twice".into()));
                }
                let f = H5File::create(&mut mpi, &mut h5t, ranks, path, spec);
                groups.insert("/".into());
                file = Some(f);
            }
            other => {
                let f = file
                    .as_mut()
                    .ok_or_else(|| ReplayError::Invalid("no file".into()))?;
                match other {
                    H5Call::CreateGroup { group } => {
                        if !groups.insert(group.clone()) {
                            return Err(ReplayError::Invalid(format!("group {group} exists")));
                        }
                        f.create_group(&mut mpi, &mut h5t, *rank, group);
                    }
                    H5Call::CreateDataset {
                        group,
                        name,
                        rows,
                        cols,
                    } => {
                        let key = format::dataset_key(group, name);
                        if !groups.contains(group) || !datasets.insert(key) {
                            return Err(ReplayError::Invalid(format!(
                                "cannot create {group}/{name}"
                            )));
                        }
                        f.create_dataset(&mut mpi, &mut h5t, *rank, group, name, *rows, *cols);
                    }
                    H5Call::CreateDatasetParallel {
                        group,
                        name,
                        rows,
                        cols,
                        nranks,
                    } => {
                        let key = format::dataset_key(group, name);
                        if !groups.contains(group) || !datasets.insert(key) {
                            return Err(ReplayError::Invalid(format!(
                                "cannot create {group}/{name}"
                            )));
                        }
                        let use_ranks: Vec<u32> =
                            ranks.iter().copied().take(*nranks as usize).collect();
                        f.create_dataset_parallel(
                            &mut mpi, &mut h5t, &use_ranks, group, name, *rows, *cols,
                        );
                    }
                    H5Call::ResizeDataset {
                        group,
                        name,
                        rows,
                        cols,
                    } => {
                        if !datasets.contains(&format::dataset_key(group, name)) {
                            return Err(ReplayError::Invalid(format!(
                                "resize of missing {group}/{name}"
                            )));
                        }
                        f.resize_dataset(&mut mpi, &mut h5t, *rank, group, name, *rows, *cols);
                    }
                    H5Call::ResizeDatasetParallel {
                        group,
                        name,
                        rows,
                        cols,
                        nranks,
                    } => {
                        if !datasets.contains(&format::dataset_key(group, name)) {
                            return Err(ReplayError::Invalid(format!(
                                "resize of missing {group}/{name}"
                            )));
                        }
                        let use_ranks: Vec<u32> =
                            ranks.iter().copied().take(*nranks as usize).collect();
                        f.resize_dataset_parallel(
                            &mut mpi, &mut h5t, &use_ranks, group, name, *rows, *cols,
                        );
                    }
                    H5Call::DeleteDataset { group, name } => {
                        if !datasets.remove(&format::dataset_key(group, name)) {
                            return Err(ReplayError::Invalid(format!(
                                "delete of missing {group}/{name}"
                            )));
                        }
                        f.delete_dataset(&mut mpi, &mut h5t, *rank, group, name);
                    }
                    H5Call::RenameDataset {
                        src_group,
                        src_name,
                        dst_group,
                        dst_name,
                    } => {
                        let src = format::dataset_key(src_group, src_name);
                        let dst = format::dataset_key(dst_group, dst_name);
                        if !datasets.remove(&src)
                            || !groups.contains(dst_group)
                            || !datasets.insert(dst)
                        {
                            return Err(ReplayError::Invalid(format!(
                                "rename of missing {src_group}/{src_name}"
                            )));
                        }
                        f.rename_dataset(
                            &mut mpi, &mut h5t, *rank, src_group, src_name, dst_group, dst_name,
                        );
                    }
                    H5Call::CloseFile => {
                        f.close(&mut mpi, &mut h5t, ranks);
                    }
                    H5Call::CreateFile => unreachable!(),
                }
            }
        }
    }
    let view = pfs.client_view(pfs.live());
    let bytes = view.read(path).ok_or(ReplayError::NoFile)?;
    check(bytes).map_err(ReplayError::Check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfs::ext4::Ext4Direct;

    fn preamble() -> Vec<(u32, H5Call)> {
        vec![
            (0, H5Call::CreateFile),
            (0, H5Call::CreateGroup { group: "g1".into() }),
            (0, H5Call::CreateGroup { group: "g2".into() }),
            (
                0,
                H5Call::CreateDataset {
                    group: "g1".into(),
                    name: "d1".into(),
                    rows: 20,
                    cols: 20,
                },
            ),
        ]
    }

    #[test]
    fn replay_produces_logical_state() {
        let mut pfs = Ext4Direct::paper_default();
        let logical = h5replay(&mut pfs, "/f.h5", &[0, 1], &preamble()).unwrap();
        assert!(logical.has_dataset("g1", "d1"));
        assert!(logical.groups.contains_key("g2"));
    }

    #[test]
    fn replay_rejects_invalid_subsets() {
        let mut pfs = Ext4Direct::paper_default();
        let calls = vec![(
            0,
            H5Call::ResizeDataset {
                group: "g1".into(),
                name: "d1".into(),
                rows: 40,
                cols: 40,
            },
        )];
        assert!(matches!(
            h5replay(&mut pfs, "/f.h5", &[0], &calls),
            Err(ReplayError::Invalid(_))
        ));
    }

    #[test]
    fn replays_deterministic_digest() {
        let mut a = Ext4Direct::paper_default();
        let mut b = Ext4Direct::paper_default();
        let la = h5replay(&mut a, "/f.h5", &[0], &preamble()).unwrap();
        let lb = h5replay(&mut b, "/f.h5", &[0], &preamble()).unwrap();
        assert_eq!(la, lb);
        assert_eq!(la.digest(), lb.digest());
    }

    #[test]
    fn replay_program_renders_every_call() {
        let calls = vec![
            (0, H5Call::CreateFile),
            (0, H5Call::CreateGroup { group: "g1".into() }),
            (
                0,
                H5Call::CreateDataset {
                    group: "g1".into(),
                    name: "d1".into(),
                    rows: 200,
                    cols: 200,
                },
            ),
            (
                0,
                H5Call::ResizeDataset {
                    group: "g1".into(),
                    name: "d1".into(),
                    rows: 400,
                    cols: 400,
                },
            ),
            (
                0,
                H5Call::RenameDataset {
                    src_group: "g1".into(),
                    src_name: "d1".into(),
                    dst_group: "g1".into(),
                    dst_name: "dx".into(),
                },
            ),
            (
                0,
                H5Call::DeleteDataset {
                    group: "g1".into(),
                    name: "dx".into(),
                },
            ),
        ];
        let c = render_replay_program("/file.h5", &calls);
        for needle in [
            "H5Fcreate(\"/file.h5\"",
            "H5Gcreate(file, \"g1\"",
            "H5Dcreate(file, \"/g1/d1\"",
            "H5Dset_extent",
            "H5Lmove(file, \"/g1/d1\", file, \"/g1/dx\"",
            "H5Ldelete(file, \"/g1/dx\"",
            "MPI_Init",
            "H5Fclose(file);",
        ] {
            assert!(c.contains(needle), "missing {needle} in:\n{c}");
        }
    }

    #[test]
    fn h5clear_repairs_eof() {
        let mut pfs = Ext4Direct::paper_default();
        let _ = h5replay(&mut pfs, "/f.h5", &[0], &preamble()).unwrap();
        let bytes = pfs.client_view(pfs.live()).read("/f.h5").unwrap().to_vec();
        // Break the EOF (superblock behind the B-tree — bug 13's shape).
        let mut broken = bytes.clone();
        broken[16..24].copy_from_slice(&200u64.to_le_bytes());
        assert!(check(&broken).is_err());
        let unfixed = h5clear(&broken, ClearOpts::default());
        assert!(check(&unfixed).is_err());
        let fixed = h5clear(&broken, ClearOpts { increase_eof: true });
        assert!(check(&fixed).is_ok());
    }

    #[test]
    fn h5inspect_maps_every_structure() {
        let mut pfs = Ext4Direct::paper_default();
        let _ = h5replay(&mut pfs, "/f.h5", &[0], &preamble()).unwrap();
        let bytes = pfs.client_view(pfs.live()).read("/f.h5").unwrap().to_vec();
        let map = h5inspect(&bytes).unwrap();
        assert!(map.iter().any(|o| o.name == "superblock"));
        assert!(map.iter().any(|o| o.name.contains("local heap of g1")));
        assert!(map.iter().any(|o| o.is_data));
        let json = inspect_to_json(&map);
        assert!(json.contains("\"object\": \"superblock\""));
        // Ranges must not overlap.
        let mut prev_end = 0;
        for o in &map {
            assert!(o.addr >= prev_end, "overlap at {}", o.name);
            prev_end = o.addr + o.len;
        }
    }
}
