//! A minimal JSON writer.
//!
//! `h5inspect` emits its object map as JSON, as the paper's tool does
//! (§5.2: "generates a JSON file to record its object mapping
//! information"). The values we serialize are flat (strings, integers,
//! arrays of objects), so a ~100-line writer keeps the dependency set to
//! the crates the project allows.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (JSON number).
    Int(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serialize with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => Self::write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    Self::write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Int(42).pretty(), "42");
        assert_eq!(Json::Str("a\"b".into()).pretty(), "\"a\\\"b\"");
    }

    #[test]
    fn nested_structure() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("superblock".into())),
            ("range".into(), Json::Arr(vec![Json::Int(0), Json::Int(96)])),
        ]);
        let s = j.pretty();
        assert!(s.contains("\"name\": \"superblock\""));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn empty_collections() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(Json::Str("\u{1}".into()).pretty(), "\"\\u0001\"");
        assert_eq!(Json::Str("a\tb\n".into()).pretty(), "\"a\\tb\\n\"");
    }
}
