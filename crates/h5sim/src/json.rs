//! A minimal JSON writer and reader.
//!
//! `h5inspect` emits its object map as JSON, as the paper's tool does
//! (§5.2: "generates a JSON file to record its object mapping
//! information"). The values we serialize are flat (strings, integers,
//! arrays of objects), so a ~100-line writer keeps the dependency set to
//! the crates the project allows. [`Json::parse`] is the matching
//! recursive-descent reader: it round-trips everything [`Json::pretty`]
//! produces (the telemetry gate in `scripts/verify.sh` validates
//! `--telemetry-out` files with it) and accepts arbitrary whitespace,
//! so hand-written fixtures parse too. Numbers are unsigned integers —
//! the subset this codebase writes.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (JSON number).
    Int(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serialize with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => Self::write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    Self::write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the subset this module writes: `null`,
    /// booleans, unsigned integers, strings, arrays, objects). Returns
    /// a message pinpointing the byte offset on malformed input;
    /// trailing non-whitespace after the document is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = Self::parse_value(bytes, &mut pos)?;
        Self::skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The integer value, if this is a number.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", b as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        Self::skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') => Self::parse_keyword(bytes, pos, "null", Json::Null),
            Some(b't') => Self::parse_keyword(bytes, pos, "true", Json::Bool(true)),
            Some(b'f') => Self::parse_keyword(bytes, pos, "false", Json::Bool(false)),
            Some(b'"') => Self::parse_string(bytes, pos).map(Json::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                Self::skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(Self::parse_value(bytes, pos)?);
                    Self::skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                Self::skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    Self::skip_ws(bytes, pos);
                    let key = Self::parse_string(bytes, pos)?;
                    Self::skip_ws(bytes, pos);
                    Self::expect(bytes, pos, b':')?;
                    let value = Self::parse_value(bytes, pos)?;
                    fields.push((key, value));
                    Self::skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let start = *pos;
                while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                    *pos += 1;
                }
                std::str::from_utf8(&bytes[start..*pos])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(Json::Int)
                    .ok_or_else(|| format!("invalid number at byte {start}"))
            }
            Some(&c) => Err(format!("unexpected '{}' at byte {pos}", c as char)),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Json,
    ) -> Result<Json, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {pos}"))
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        Self::expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character (text is valid
                    // UTF-8 by construction — it came from a &str).
                    let start = *pos;
                    *pos += 1;
                    while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                        *pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid utf-8"));
                }
            }
        }
    }

    fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Int(42).pretty(), "42");
        assert_eq!(Json::Str("a\"b".into()).pretty(), "\"a\\\"b\"");
    }

    #[test]
    fn nested_structure() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("superblock".into())),
            ("range".into(), Json::Arr(vec![Json::Int(0), Json::Int(96)])),
        ]);
        let s = j.pretty();
        assert!(s.contains("\"name\": \"superblock\""));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn empty_collections() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(Json::Str("\u{1}".into()).pretty(), "\"\\u0001\"");
        assert_eq!(Json::Str("a\tb\n".into()).pretty(), "\"a\\tb\\n\"");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("a\"b\\c\n\u{1}µ".into())),
            ("n".into(), Json::Int(u64::MAX)),
            ("flag".into(), Json::Bool(false)),
            ("nothing".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![
                    Json::Int(1),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                    Json::Str("".into()),
                ]),
            ),
        ]);
        assert_eq!(Json::parse(&j.pretty()).unwrap(), j);
    }

    #[test]
    fn parse_accepts_compact_spelling() {
        let j = Json::parse(r#"{"a":[1,2,{"b":true}],"c":null}"#).unwrap();
        assert_eq!(j.get("c"), Some(&Json::Null));
        let arr = j.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_int(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"abc", "1 2", "{}x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"s": "x", "n": 7}"#).unwrap();
        assert_eq!(j.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("n").and_then(Json::as_int), Some(7));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
        assert_eq!(Json::Null.as_arr(), None);
    }
}
