//! The byte-level file format and its checker (≈ `h5check`).
//!
//! Layout (all integers little-endian, all structures at fixed sizes):
//!
//! ```text
//! SUPERBLOCK @0, 96 B : "H5SB" ver:u8 status:u8 pad:2
//!                        root_oh:u64 eof:u64
//! OHDR (object header), 64 B:
//!   "OHDR" kind:u8 pad:3
//!   group:   btree:u64 heap:u64
//!   dataset: rows:u64 cols:u64 dtree:u64
//! TREE (group B-tree node), 160 B:
//!   "TREE" n:u16 pad:2  snod_addr:u64 × ≤8
//! SNOD (symbol-table node), 272 B:
//!   "SNOD" n:u16 pad:2  (name_off:u64 oh_addr:u64) × ≤16
//! HEAP (local name heap), 512 B:
//!   "HEAP" used:u16 pad:2  then (len:u16 bytes) records at offsets
//! DTRE (dataset chunk B-tree node), 1600 B:
//!   "DTRE" leaf:u8 n:u16 pad:1  (addr:u64 len:u64) × ≤96
//! data segments: raw bytes, SEG = 64 KiB each
//! ```
//!
//! `check` walks superblock → root group → groups → datasets →
//! segments, validating every signature and address bound. Its error
//! vocabulary deliberately mirrors the failures the paper reports:
//! *address overflow* (bug 13), *wrong B-tree signature* (bug 14),
//! *cannot open the file* (bug 15).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Fixed structure sizes (bytes).
pub mod sizes {
    /// Superblock length.
    pub const SUPERBLOCK: u64 = 96;
    /// Object header length.
    pub const OHDR: u64 = 64;
    /// Group B-tree node length.
    pub const TREE: u64 = 160;
    /// Symbol-table node length.
    pub const SNOD: u64 = 272;
    /// Local heap length.
    pub const HEAP: u64 = 512;
    /// Dataset chunk B-tree node length.
    pub const DTRE: u64 = 1600;
    /// Data segment length.
    pub const SEG: u64 = 64 * 1024;
    /// Max group B-tree fan-out.
    pub const TREE_CAP: usize = 8;
    /// Max symbol-table entries.
    pub const SNOD_CAP: usize = 16;
    /// Max dataset B-tree entries per node (leaf split threshold —
    /// chosen so the paper's 800×800 dataset fits in one leaf and
    /// 1000×1000 does not, reproducing the bug-14 sensitivity).
    pub const DTRE_CAP: usize = 96;
    /// Element size (f64, as in the paper's h5py datasets).
    pub const ELEM: u64 = 8;
}

/// Object kinds in an `OHDR`.
pub const KIND_GROUP: u8 = 1;
/// Dataset object kind.
pub const KIND_DATASET: u8 = 2;

/// Failures `check` can report.
///
/// Fields carry the failing structure's name, file offset, found
/// signature bytes and the superblock EOF where relevant.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H5Error {
    /// The file is shorter than a structure it must contain.
    Truncated { what: &'static str, addr: u64 },
    /// A structure's magic signature is wrong (bug 14's "wrong B-tree
    /// signature").
    BadSignature {
        what: &'static str,
        addr: u64,
        found: [u8; 4],
    },
    /// An address points at or beyond the superblock's end-of-file
    /// (bug 13's "addr overflow").
    AddrOverflow {
        what: &'static str,
        addr: u64,
        eof: u64,
    },
    /// A name offset does not decode inside the local heap.
    BadHeapName { group: String, offset: u64 },
    /// The superblock itself is unreadable → the file cannot be opened
    /// at all (bug 15's consequence).
    CannotOpen { reason: String },
}

impl fmt::Display for H5Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H5Error::Truncated { what, addr } => {
                write!(f, "h5check: {what} at {addr:#x} past end of file")
            }
            H5Error::BadSignature { what, addr, found } => write!(
                f,
                "h5check: wrong {what} signature at {addr:#x} (found {:?})",
                String::from_utf8_lossy(found)
            ),
            H5Error::AddrOverflow { what, addr, eof } => {
                write!(
                    f,
                    "h5check: {what} address {addr:#x} overflows eof {eof:#x}"
                )
            }
            H5Error::BadHeapName { group, offset } => {
                write!(f, "h5check: bad heap name offset {offset} in group {group}")
            }
            H5Error::CannotOpen { reason } => write!(f, "h5check: cannot open file: {reason}"),
        }
    }
}

impl std::error::Error for H5Error {}

/// The logical content of a structurally-valid file: what an application
/// (or the golden-master comparison) actually observes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct H5Logical {
    /// group name → dataset names.
    pub groups: BTreeMap<String, BTreeSet<String>>,
    /// "group/dataset" → (rows, cols, content digest).
    pub datasets: BTreeMap<String, (u64, u64, u64)>,
}

/// Canonical "group/dataset" key ("/" joins as "/name", not "//name").
pub fn dataset_key(group: &str, name: &str) -> String {
    if group == "/" {
        format!("/{name}")
    } else {
        format!("{group}/{name}")
    }
}

impl H5Logical {
    /// `true` if a dataset exists.
    pub fn has_dataset(&self, group: &str, name: &str) -> bool {
        self.datasets.contains_key(&dataset_key(group, name))
    }

    /// Digest for state dedup.
    pub fn digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.groups.hash(&mut h);
        self.datasets.hash(&mut h);
        h.finish()
    }
}

fn rd_u16(b: &[u8], at: u64) -> Option<u16> {
    let at = at as usize;
    Some(u16::from_le_bytes(b.get(at..at + 2)?.try_into().ok()?))
}

fn rd_u64(b: &[u8], at: u64) -> Option<u64> {
    let at = at as usize;
    Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
}

fn sig(b: &[u8], at: u64) -> Option<[u8; 4]> {
    let at = at as usize;
    b.get(at..at + 4)?.try_into().ok()
}

fn expect_sig(
    b: &[u8],
    at: u64,
    magic: &[u8; 4],
    what: &'static str,
    eof: u64,
) -> Result<(), H5Error> {
    if at >= eof {
        return Err(H5Error::AddrOverflow {
            what,
            addr: at,
            eof,
        });
    }
    let found = sig(b, at).ok_or(H5Error::Truncated { what, addr: at })?;
    if &found != magic {
        return Err(H5Error::BadSignature {
            what,
            addr: at,
            found,
        });
    }
    Ok(())
}

/// Read a heap-resident name: `len:u16` + bytes at `heap_addr + off`.
fn heap_name(b: &[u8], heap_addr: u64, off: u64, group: &str) -> Result<String, H5Error> {
    let at = heap_addr + off;
    let err = || H5Error::BadHeapName {
        group: group.to_string(),
        offset: off,
    };
    if !(8..sizes::HEAP).contains(&off) {
        return Err(err());
    }
    let len = rd_u16(b, at).ok_or_else(err)? as u64;
    if len == 0 || len > 255 || at + 2 + len > heap_addr + sizes::HEAP {
        return Err(err());
    }
    let raw = &b[(at + 2) as usize..(at + 2 + len) as usize];
    let s = std::str::from_utf8(raw).map_err(|_| err())?;
    if s.chars().any(|c| c.is_control()) || s.is_empty() {
        return Err(err());
    }
    Ok(s.to_string())
}

/// Walk a dataset chunk B-tree, collecting `(addr, len)` data segments.
fn walk_dtree(
    b: &[u8],
    addr: u64,
    eof: u64,
    depth: usize,
    out: &mut Vec<(u64, u64)>,
) -> Result<(), H5Error> {
    if depth > 4 {
        return Err(H5Error::BadSignature {
            what: "dataset B-tree (cycle)",
            addr,
            found: *b"????",
        });
    }
    expect_sig(b, addr, b"DTRE", "dataset B-tree node", eof)?;
    let leaf = b[(addr + 4) as usize];
    let n = rd_u16(b, addr + 5).ok_or(H5Error::Truncated {
        what: "dataset B-tree node",
        addr,
    })? as usize;
    if n > sizes::DTRE_CAP {
        return Err(H5Error::BadSignature {
            what: "dataset B-tree node (entry count)",
            addr,
            found: *b"DTRE",
        });
    }
    for i in 0..n {
        let ea = addr + 8 + (i as u64) * 16;
        let a = rd_u64(b, ea).ok_or(H5Error::Truncated {
            what: "dataset B-tree entry",
            addr: ea,
        })?;
        let l = rd_u64(b, ea + 8).ok_or(H5Error::Truncated {
            what: "dataset B-tree entry",
            addr: ea,
        })?;
        if leaf == 1 {
            if a + l > eof {
                return Err(H5Error::AddrOverflow {
                    what: "data segment",
                    addr: a + l,
                    eof,
                });
            }
            if (a + l) as usize > b.len() {
                return Err(H5Error::Truncated {
                    what: "data segment",
                    addr: a,
                });
            }
            out.push((a, l));
        } else {
            walk_dtree(b, a, eof, depth + 1, out)?;
        }
    }
    Ok(())
}

fn digest_bytes(parts: &[(u64, u64)], b: &[u8]) -> u64 {
    use std::hash::Hasher;
    // Hash the byte *stream*, not the slices: `Hasher::write` calls
    // concatenate (no length prefixes, unlike `Hash for [u8]`), so two
    // files storing the same data in different segment layouts digest
    // equally.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for &(a, l) in parts {
        h.write(&b[a as usize..(a + l) as usize]);
    }
    h.finish()
}

/// Parse one group (object header at `oh`) into the logical state.
fn check_group(
    b: &[u8],
    gname: &str,
    oh: u64,
    eof: u64,
    logical: &mut H5Logical,
) -> Result<(), H5Error> {
    expect_sig(b, oh, b"OHDR", "object header", eof)?;
    let kind = b[(oh + 4) as usize];
    if kind != KIND_GROUP {
        return Err(H5Error::BadSignature {
            what: "group object header (kind)",
            addr: oh,
            found: *b"OHDR",
        });
    }
    let btree = rd_u64(b, oh + 8).ok_or(H5Error::Truncated {
        what: "object header",
        addr: oh,
    })?;
    let heap = rd_u64(b, oh + 16).ok_or(H5Error::Truncated {
        what: "object header",
        addr: oh,
    })?;
    expect_sig(b, btree, b"TREE", "group B-tree node", eof)?;
    expect_sig(b, heap, b"HEAP", "local heap", eof)?;
    logical.groups.entry(gname.to_string()).or_default();
    let nsnod = rd_u16(b, btree + 4).ok_or(H5Error::Truncated {
        what: "group B-tree node",
        addr: btree,
    })? as usize;
    if nsnod > sizes::TREE_CAP {
        return Err(H5Error::BadSignature {
            what: "group B-tree node (fan-out)",
            addr: btree,
            found: *b"TREE",
        });
    }
    for s in 0..nsnod {
        let snod = rd_u64(b, btree + 8 + (s as u64) * 8).ok_or(H5Error::Truncated {
            what: "group B-tree entry",
            addr: btree,
        })?;
        expect_sig(b, snod, b"SNOD", "symbol table node", eof)?;
        let n = rd_u16(b, snod + 4).ok_or(H5Error::Truncated {
            what: "symbol table node",
            addr: snod,
        })? as usize;
        if n > sizes::SNOD_CAP {
            return Err(H5Error::BadSignature {
                what: "symbol table node (entry count)",
                addr: snod,
                found: *b"SNOD",
            });
        }
        for i in 0..n {
            let ea = snod + 8 + (i as u64) * 16;
            let name_off = rd_u64(b, ea).ok_or(H5Error::Truncated {
                what: "symbol table entry",
                addr: ea,
            })?;
            let child_oh = rd_u64(b, ea + 8).ok_or(H5Error::Truncated {
                what: "symbol table entry",
                addr: ea,
            })?;
            let name = heap_name(b, heap, name_off, gname)?;
            expect_sig(b, child_oh, b"OHDR", "object header", eof)?;
            let ckind = b[(child_oh + 4) as usize];
            if ckind == KIND_GROUP {
                check_group(b, &name, child_oh, eof, logical)?;
            } else if ckind == KIND_DATASET {
                let rows = rd_u64(b, child_oh + 8).unwrap_or(0);
                let cols = rd_u64(b, child_oh + 16).unwrap_or(0);
                let dtree = rd_u64(b, child_oh + 24).ok_or(H5Error::Truncated {
                    what: "dataset object header",
                    addr: child_oh,
                })?;
                let mut segs = Vec::new();
                walk_dtree(b, dtree, eof, 0, &mut segs)?;
                let have: u64 = segs.iter().map(|s| s.1).sum();
                if have < rows * cols * sizes::ELEM {
                    return Err(H5Error::Truncated {
                        what: "dataset data",
                        addr: dtree,
                    });
                }
                let digest = digest_bytes(&segs, b);
                logical
                    .groups
                    .entry(gname.to_string())
                    .or_default()
                    .insert(name.clone());
                logical
                    .datasets
                    .insert(dataset_key(gname, &name), (rows, cols, digest));
            } else {
                return Err(H5Error::BadSignature {
                    what: "object header (kind)",
                    addr: child_oh,
                    found: *b"OHDR",
                });
            }
        }
    }
    Ok(())
}

/// Per-dataset results of a lenient walk: real HDF5 applications open
/// one dataset at a time, so corruption of one dataset's structures does
/// not necessarily make the others unreadable. The paper's baseline
/// crash-consistency model needs exactly this granularity ("if a …
/// dataset was closed before the crash, all updates to that dataset …
/// were preserved").
#[derive(Debug, Clone, Default)]
pub struct LenientReport {
    /// Fatal error opening the file at all (superblock / root group).
    pub open_error: Option<H5Error>,
    /// group → dataset names reachable.
    pub groups: BTreeMap<String, BTreeSet<String>>,
    /// "group/dataset" → per-dataset outcome.
    pub datasets: BTreeMap<String, Result<(u64, u64, u64), H5Error>>,
    /// Errors that made part of the namespace unreachable (broken
    /// B-tree / heap / symbol-table of some group).
    pub group_errors: Vec<(String, H5Error)>,
}

impl LenientReport {
    /// Collapse into the strict result: `Ok` only if everything parsed.
    pub fn into_strict(self) -> Result<H5Logical, H5Error> {
        if let Some(e) = self.open_error {
            return Err(e);
        }
        if let Some((_, e)) = self.group_errors.into_iter().next() {
            return Err(e);
        }
        let mut logical = H5Logical {
            groups: self.groups,
            datasets: BTreeMap::new(),
        };
        for (k, v) in self.datasets {
            match v {
                Ok(t) => {
                    logical.datasets.insert(k, t);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(logical)
    }
}

fn lenient_group(b: &[u8], gname: &str, oh: u64, eof: u64, out: &mut LenientReport) {
    if let Err(e) = expect_sig(b, oh, b"OHDR", "object header", eof) {
        out.group_errors.push((gname.to_string(), e));
        return;
    }
    let kind = b[(oh + 4) as usize];
    if kind != KIND_GROUP {
        out.group_errors.push((
            gname.to_string(),
            H5Error::BadSignature {
                what: "group object header (kind)",
                addr: oh,
                found: *b"OHDR",
            },
        ));
        return;
    }
    let (Some(btree), Some(heap)) = (rd_u64(b, oh + 8), rd_u64(b, oh + 16)) else {
        out.group_errors.push((
            gname.to_string(),
            H5Error::Truncated {
                what: "object header",
                addr: oh,
            },
        ));
        return;
    };
    for (addr, magic, what) in [
        (btree, b"TREE", "group B-tree node"),
        (heap, b"HEAP", "local heap"),
    ] {
        if let Err(e) = expect_sig(b, addr, magic, what, eof) {
            out.group_errors.push((gname.to_string(), e));
            return;
        }
    }
    out.groups.entry(gname.to_string()).or_default();
    let nsnod = rd_u16(b, btree + 4).unwrap_or(u16::MAX) as usize;
    if nsnod > sizes::TREE_CAP {
        out.group_errors.push((
            gname.to_string(),
            H5Error::BadSignature {
                what: "group B-tree node (fan-out)",
                addr: btree,
                found: *b"TREE",
            },
        ));
        return;
    }
    for s in 0..nsnod {
        let Some(snod) = rd_u64(b, btree + 8 + (s as u64) * 8) else {
            continue;
        };
        if let Err(e) = expect_sig(b, snod, b"SNOD", "symbol table node", eof) {
            out.group_errors.push((gname.to_string(), e));
            continue;
        }
        let n = rd_u16(b, snod + 4).unwrap_or(u16::MAX) as usize;
        if n > sizes::SNOD_CAP {
            out.group_errors.push((
                gname.to_string(),
                H5Error::BadSignature {
                    what: "symbol table node (entry count)",
                    addr: snod,
                    found: *b"SNOD",
                },
            ));
            continue;
        }
        // Pass 1: decode the symbol-table entries. A lookup scans the
        // node sequentially, so one undecodable name record poisons
        // every lookup through this node ("cannot open an unmodified
        // dataset", Table 3 bugs 9-11).
        let mut decoded: Vec<(String, u64)> = Vec::new();
        let mut poison: Option<H5Error> = None;
        for i in 0..n {
            let ea = snod + 8 + (i as u64) * 16;
            let (Some(name_off), Some(child_oh)) = (rd_u64(b, ea), rd_u64(b, ea + 8)) else {
                continue;
            };
            match heap_name(b, heap, name_off, gname) {
                Ok(name) => decoded.push((name, child_oh)),
                Err(e) => {
                    out.group_errors.push((gname.to_string(), e.clone()));
                    poison = Some(e);
                }
            }
        }
        for (name, child_oh) in decoded {
            let kind_ok = expect_sig(b, child_oh, b"OHDR", "object header", eof);
            let ckind = if kind_ok.is_ok() {
                b[(child_oh + 4) as usize]
            } else {
                0
            };
            if ckind == KIND_GROUP && poison.is_none() {
                lenient_group(b, &name, child_oh, eof, out);
            } else {
                let key = dataset_key(gname, &name);
                out.groups
                    .entry(gname.to_string())
                    .or_default()
                    .insert(name.clone());
                let result = (|| -> Result<(u64, u64, u64), H5Error> {
                    if let Some(p) = &poison {
                        return Err(p.clone());
                    }
                    kind_ok?;
                    if ckind != KIND_DATASET {
                        return Err(H5Error::BadSignature {
                            what: "object header (kind)",
                            addr: child_oh,
                            found: *b"OHDR",
                        });
                    }
                    let rows = rd_u64(b, child_oh + 8).unwrap_or(0);
                    let cols = rd_u64(b, child_oh + 16).unwrap_or(0);
                    let dtree = rd_u64(b, child_oh + 24).ok_or(H5Error::Truncated {
                        what: "dataset object header",
                        addr: child_oh,
                    })?;
                    let mut segs = Vec::new();
                    walk_dtree(b, dtree, eof, 0, &mut segs)?;
                    let have: u64 = segs.iter().map(|s| s.1).sum();
                    if have < rows * cols * sizes::ELEM {
                        return Err(H5Error::Truncated {
                            what: "dataset data",
                            addr: dtree,
                        });
                    }
                    Ok((rows, cols, digest_bytes(&segs, b)))
                })();
                out.datasets.insert(key, result);
            }
        }
    }
}

/// Lenient walk: collect per-dataset outcomes instead of failing on the
/// first corruption.
pub fn check_lenient(bytes: &[u8]) -> LenientReport {
    let mut out = LenientReport::default();
    if bytes.len() < sizes::SUPERBLOCK as usize || &bytes[0..4] != b"H5SB" {
        out.open_error = Some(H5Error::CannotOpen {
            reason: "superblock signature not found".into(),
        });
        return out;
    }
    let root_oh = rd_u64(bytes, 8).unwrap_or(0);
    let eof = rd_u64(bytes, 16).unwrap_or(0);
    let before = out.group_errors.len();
    lenient_group(bytes, "/", root_oh, eof, &mut out);
    // A broken root group means the file cannot be opened at all.
    if out.group_errors.len() > before && out.groups.is_empty() {
        let (_, e) = out.group_errors[before].clone();
        out.open_error = Some(H5Error::CannotOpen {
            reason: e.to_string(),
        });
    }
    out
}

/// `h5check`: validate a file image and extract its logical state.
pub fn check(bytes: &[u8]) -> Result<H5Logical, H5Error> {
    if bytes.len() < sizes::SUPERBLOCK as usize {
        return Err(H5Error::CannotOpen {
            reason: "file shorter than superblock".into(),
        });
    }
    if &bytes[0..4] != b"H5SB" {
        return Err(H5Error::CannotOpen {
            reason: "superblock signature not found".into(),
        });
    }
    let root_oh = rd_u64(bytes, 8).ok_or(H5Error::CannotOpen {
        reason: "superblock truncated".into(),
    })?;
    let eof = rd_u64(bytes, 16).ok_or(H5Error::CannotOpen {
        reason: "superblock truncated".into(),
    })?;
    let mut logical = H5Logical::default();
    match check_group(bytes, "/", root_oh, eof, &mut logical) {
        Ok(()) => Ok(logical),
        // A broken *root* object header means nothing in the file is
        // reachable — the NetCDF-style "cannot open" failure.
        Err(H5Error::BadSignature {
            what: "object header",
            addr,
            ..
        }) if addr == root_oh => Err(H5Error::CannotOpen {
            reason: format!("root object header unreadable at {addr:#x}"),
        }),
        Err(H5Error::AddrOverflow {
            what: "object header",
            addr,
            eof,
        }) if addr == root_oh => Err(H5Error::CannotOpen {
            reason: format!("root object header at {addr:#x} beyond eof {eof:#x}"),
        }),
        Err(e) => Err(e),
    }
}

/// Superblock accessors used by `h5clear` and the library runtime.
pub mod superblock {
    use super::sizes;

    /// Read the EOF field.
    pub fn eof(bytes: &[u8]) -> Option<u64> {
        super::rd_u64(bytes, 16)
    }

    /// Serialize a superblock.
    pub fn encode(root_oh: u64, eof: u64, status: u8) -> Vec<u8> {
        let mut b = vec![0u8; sizes::SUPERBLOCK as usize];
        b[0..4].copy_from_slice(b"H5SB");
        b[4] = 1; // version
        b[5] = status;
        b[8..16].copy_from_slice(&root_oh.to_le_bytes());
        b[16..24].copy_from_slice(&eof.to_le_bytes());
        b
    }
}

/// Encoders for each structure (used by the library runtime).
pub mod encode {
    use super::sizes;

    /// Group object header.
    pub fn group_ohdr(btree: u64, heap: u64) -> Vec<u8> {
        let mut b = vec![0u8; sizes::OHDR as usize];
        b[0..4].copy_from_slice(b"OHDR");
        b[4] = super::KIND_GROUP;
        b[8..16].copy_from_slice(&btree.to_le_bytes());
        b[16..24].copy_from_slice(&heap.to_le_bytes());
        b
    }

    /// Dataset object header.
    pub fn dataset_ohdr(rows: u64, cols: u64, dtree: u64) -> Vec<u8> {
        let mut b = vec![0u8; sizes::OHDR as usize];
        b[0..4].copy_from_slice(b"OHDR");
        b[4] = super::KIND_DATASET;
        b[8..16].copy_from_slice(&rows.to_le_bytes());
        b[16..24].copy_from_slice(&cols.to_le_bytes());
        b[24..32].copy_from_slice(&dtree.to_le_bytes());
        b
    }

    /// Group B-tree node over symbol-table node addresses.
    pub fn tree(snods: &[u64]) -> Vec<u8> {
        assert!(snods.len() <= sizes::TREE_CAP);
        let mut b = vec![0u8; sizes::TREE as usize];
        b[0..4].copy_from_slice(b"TREE");
        b[4..6].copy_from_slice(&(snods.len() as u16).to_le_bytes());
        for (i, s) in snods.iter().enumerate() {
            let at = 8 + i * 8;
            b[at..at + 8].copy_from_slice(&s.to_le_bytes());
        }
        b
    }

    /// Symbol-table node over `(name_offset, object_header)` entries.
    pub fn snod(entries: &[(u64, u64)]) -> Vec<u8> {
        assert!(entries.len() <= sizes::SNOD_CAP);
        let mut b = vec![0u8; sizes::SNOD as usize];
        b[0..4].copy_from_slice(b"SNOD");
        b[4..6].copy_from_slice(&(entries.len() as u16).to_le_bytes());
        for (i, (off, oh)) in entries.iter().enumerate() {
            let at = 8 + i * 16;
            b[at..at + 8].copy_from_slice(&off.to_le_bytes());
            b[at + 8..at + 16].copy_from_slice(&oh.to_le_bytes());
        }
        b
    }

    /// Local heap with `(offset, name)` records (offsets relative to the
    /// heap start; record = len:u16 + bytes).
    pub fn heap(names: &[(u64, String)]) -> Vec<u8> {
        let mut b = vec![0u8; sizes::HEAP as usize];
        b[0..4].copy_from_slice(b"HEAP");
        let mut used = 8u64;
        for (off, name) in names {
            let at = *off as usize;
            assert!(at + 2 + name.len() <= sizes::HEAP as usize, "heap overflow");
            b[at..at + 2].copy_from_slice(&(name.len() as u16).to_le_bytes());
            b[at + 2..at + 2 + name.len()].copy_from_slice(name.as_bytes());
            used = used.max(*off + 2 + name.len() as u64);
        }
        b[4..6].copy_from_slice(&(used as u16).to_le_bytes());
        b
    }

    /// Dataset chunk B-tree node.
    pub fn dtree(leaf: bool, entries: &[(u64, u64)]) -> Vec<u8> {
        assert!(entries.len() <= sizes::DTRE_CAP);
        let mut b = vec![0u8; sizes::DTRE as usize];
        b[0..4].copy_from_slice(b"DTRE");
        b[4] = u8::from(leaf);
        b[5..7].copy_from_slice(&(entries.len() as u16).to_le_bytes());
        for (i, (a, l)) in entries.iter().enumerate() {
            let at = 8 + i * 16;
            b[at..at + 8].copy_from_slice(&a.to_le_bytes());
            b[at + 8..at + 16].copy_from_slice(&l.to_le_bytes());
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-assemble a minimal valid file: root group with one dataset.
    fn minimal_file() -> Vec<u8> {
        let mut img = Vec::new();
        let sb_end = sizes::SUPERBLOCK;
        let root_oh = sb_end;
        let tree = root_oh + sizes::OHDR;
        let heap = tree + sizes::TREE;
        let snod = heap + sizes::HEAP;
        let ds_oh = snod + sizes::SNOD;
        let dtree = ds_oh + sizes::OHDR;
        let data = dtree + sizes::DTRE;
        let dlen = 2 * 2 * sizes::ELEM;
        let eof = data + dlen;
        img.extend_from_slice(&superblock::encode(root_oh, eof, 0));
        img.extend_from_slice(&encode::group_ohdr(tree, heap));
        img.extend_from_slice(&encode::tree(&[snod]));
        img.extend_from_slice(&encode::heap(&[(8, "d1".into())]));
        img.extend_from_slice(&encode::snod(&[(8, ds_oh)]));
        img.extend_from_slice(&encode::dataset_ohdr(2, 2, dtree));
        img.extend_from_slice(&encode::dtree(true, &[(data, dlen)]));
        img.extend_from_slice(&vec![7u8; dlen as usize]);
        img
    }

    #[test]
    fn minimal_file_checks_clean() {
        let img = minimal_file();
        let logical = check(&img).expect("valid file");
        assert!(logical.has_dataset("/", "d1"));
        assert_eq!(logical.datasets["/d1"].0, 2);
    }

    #[test]
    fn corrupt_superblock_cannot_open() {
        let mut img = minimal_file();
        img[0] = b'X';
        assert!(matches!(check(&img), Err(H5Error::CannotOpen { .. })));
    }

    #[test]
    fn zeroed_tree_is_bad_signature() {
        let mut img = minimal_file();
        let tree = (sizes::SUPERBLOCK + sizes::OHDR) as usize;
        for b in &mut img[tree..tree + 4] {
            *b = 0;
        }
        assert!(matches!(
            check(&img),
            Err(H5Error::BadSignature {
                what: "group B-tree node",
                ..
            })
        ));
    }

    #[test]
    fn eof_before_data_is_addr_overflow() {
        let mut img = minimal_file();
        // Shrink the superblock EOF below the data segment end.
        let short_eof = (img.len() as u64) - 8;
        img[16..24].copy_from_slice(&short_eof.to_le_bytes());
        assert!(matches!(check(&img), Err(H5Error::AddrOverflow { .. })));
    }

    #[test]
    fn dangling_heap_name_detected() {
        let mut img = minimal_file();
        // Zero the heap record that holds "d1".
        let heap = (sizes::SUPERBLOCK + sizes::OHDR + sizes::TREE) as usize;
        for b in &mut img[heap + 8..heap + 12] {
            *b = 0;
        }
        assert!(matches!(check(&img), Err(H5Error::BadHeapName { .. })));
    }

    #[test]
    fn digest_tracks_content() {
        let img = minimal_file();
        let l1 = check(&img).unwrap();
        let mut img2 = img.clone();
        let last = img2.len() - 1;
        img2[last] ^= 0xff;
        let l2 = check(&img2).unwrap();
        assert_ne!(l1.datasets["/d1"].2, l2.datasets["/d1"].2);
        assert_ne!(l1.digest(), l2.digest());
    }

    #[test]
    fn lenient_walk_agrees_with_strict_on_clean_and_broken_files() {
        let img = minimal_file();
        // Clean file: the lenient walk collapses back to the strict
        // result.
        let lenient = check_lenient(&img);
        assert!(lenient.open_error.is_none());
        assert_eq!(lenient.clone().into_strict().unwrap(), check(&img).unwrap());
        // Break the dataset's B-tree: strict fails, lenient isolates the
        // failure to that dataset.
        let mut broken = img.clone();
        let dtree = (sizes::SUPERBLOCK
            + sizes::OHDR
            + sizes::TREE
            + sizes::HEAP
            + sizes::SNOD
            + sizes::OHDR) as usize;
        for b in &mut broken[dtree..dtree + 4] {
            *b = 0;
        }
        assert!(check(&broken).is_err());
        let lenient = check_lenient(&broken);
        assert!(lenient.open_error.is_none());
        assert!(matches!(lenient.datasets.get("/d1"), Some(Err(_))));
        assert!(lenient.into_strict().is_err());
    }

    #[test]
    fn truncated_file_reports_truncation() {
        let img = minimal_file();
        let cut = &img[..img.len() - 4];
        assert!(matches!(
            check(cut),
            Err(H5Error::Truncated { .. }) | Err(H5Error::AddrOverflow { .. })
        ));
    }
}
