//! I/O-library-level operations and their trace.
//!
//! ParaCrash generates legal golden states for the I/O-library layer by
//! replaying *preserved sets of HDF5 calls* (via its `h5replay` tool,
//! §5.1). [`H5Call`] is that replayable vocabulary; [`H5Trace`] maps each
//! executed call to its trace event so the checker can project preserved
//! sets out of the causality graph.

use tracer::EventId;

/// One I/O-library call.
///
/// Variant fields mirror the HDF5 API arguments (`group`, `name`,
/// `rows`, `cols`, `nranks`, source/destination pairs).
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum H5Call {
    /// `H5Fcreate` — create the file with an empty root group.
    CreateFile,
    /// `H5Gcreate(name)` — create a top-level group.
    CreateGroup { group: String },
    /// `H5Dcreate(group, name, dims)` + data fill.
    CreateDataset {
        group: String,
        name: String,
        rows: u64,
        cols: u64,
    },
    /// Collective `H5Dcreate` across `nranks` ranks.
    CreateDatasetParallel {
        group: String,
        name: String,
        rows: u64,
        cols: u64,
        nranks: u32,
    },
    /// `H5Dset_extent` — grow a dataset.
    ResizeDataset {
        group: String,
        name: String,
        rows: u64,
        cols: u64,
    },
    /// Collective `H5Dset_extent`.
    ResizeDatasetParallel {
        group: String,
        name: String,
        rows: u64,
        cols: u64,
        nranks: u32,
    },
    /// `H5Ldelete` — unlink a dataset from its group.
    DeleteDataset { group: String, name: String },
    /// `H5Lmove` — rename/move a dataset between groups.
    RenameDataset {
        src_group: String,
        src_name: String,
        dst_group: String,
        dst_name: String,
    },
    /// `H5Fclose`.
    CloseFile,
}

impl H5Call {
    /// Call name as traced (HDF5 API spelling).
    pub fn name(&self) -> &'static str {
        match self {
            H5Call::CreateFile => "H5Fcreate",
            H5Call::CreateGroup { .. } => "H5Gcreate",
            H5Call::CreateDataset { .. } | H5Call::CreateDatasetParallel { .. } => "H5Dcreate",
            H5Call::ResizeDataset { .. } | H5Call::ResizeDatasetParallel { .. } => "H5Dset_extent",
            H5Call::DeleteDataset { .. } => "H5Ldelete",
            H5Call::RenameDataset { .. } => "H5Lmove",
            H5Call::CloseFile => "H5Fclose",
        }
    }

    /// Trace-rendered arguments.
    pub fn args(&self) -> Vec<String> {
        match self {
            H5Call::CreateFile | H5Call::CloseFile => vec![],
            H5Call::CreateGroup { group } => vec![group.clone()],
            H5Call::CreateDataset {
                group,
                name,
                rows,
                cols,
            } => {
                vec![group.clone(), name.clone(), format!("{rows}x{cols}")]
            }
            H5Call::CreateDatasetParallel {
                group,
                name,
                rows,
                cols,
                nranks,
            } => vec![
                group.clone(),
                name.clone(),
                format!("{rows}x{cols}"),
                format!("nranks={nranks}"),
            ],
            H5Call::ResizeDataset {
                group,
                name,
                rows,
                cols,
            } => {
                vec![group.clone(), name.clone(), format!("{rows}x{cols}")]
            }
            H5Call::ResizeDatasetParallel {
                group,
                name,
                rows,
                cols,
                nranks,
            } => vec![
                group.clone(),
                name.clone(),
                format!("{rows}x{cols}"),
                format!("nranks={nranks}"),
            ],
            H5Call::DeleteDataset { group, name } => vec![group.clone(), name.clone()],
            H5Call::RenameDataset {
                src_group,
                src_name,
                dst_group,
                dst_name,
            } => vec![
                format!("{src_group}/{src_name}"),
                format!("{dst_group}/{dst_name}"),
            ],
        }
    }
}

/// The I/O-library-level trace of a run.
#[derive(Debug, Clone, Default)]
pub struct H5Trace {
    entries: Vec<(EventId, u32, H5Call)>,
}

impl H5Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one executed call (`event` is the IoLib trace event).
    pub fn push(&mut self, event: EventId, rank: u32, call: H5Call) {
        self.entries.push((event, rank, call));
    }

    /// All entries in execution order.
    pub fn entries(&self) -> &[(EventId, u32, H5Call)] {
        &self.entries
    }

    /// Number of calls.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Event ids of all calls.
    pub fn event_ids(&self) -> Vec<EventId> {
        self.entries.iter().map(|(e, _, _)| *e).collect()
    }

    /// The calls whose event ids are in `ids`, in execution order.
    pub fn subset(&self, ids: &[EventId]) -> Vec<(u32, H5Call)> {
        self.entries
            .iter()
            .filter(|(e, _, _)| ids.contains(e))
            .map(|(_, r, c)| (*r, c.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_args() {
        let c = H5Call::CreateDataset {
            group: "g1".into(),
            name: "d3".into(),
            rows: 200,
            cols: 200,
        };
        assert_eq!(c.name(), "H5Dcreate");
        assert_eq!(c.args(), vec!["g1", "d3", "200x200"]);
        assert_eq!(H5Call::CloseFile.name(), "H5Fclose");
    }

    #[test]
    fn trace_subsets() {
        let mut t = H5Trace::new();
        t.push(5, 0, H5Call::CreateFile);
        t.push(9, 0, H5Call::CloseFile);
        assert_eq!(t.len(), 2);
        let sub = t.subset(&[9]);
        assert_eq!(sub, vec![(0, H5Call::CloseFile)]);
        assert_eq!(t.event_ids(), vec![5, 9]);
    }
}
