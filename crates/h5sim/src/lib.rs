#![warn(missing_docs)]

//! # h5sim — an HDF5-like parallel I/O library over the simulated stack
//!
//! The paper's HDF5 bugs (Table 3, rows 9–15) are all statements about
//! the **order in which HDF5 1.8's metadata cache flushes its internal
//! structures into the file**: superblock, object headers, group B-tree
//! nodes, local name heaps, symbol-table nodes, and dataset chunk
//! B-trees (Figure 4 shows the byte layout of exactly these structures).
//! This crate reimplements that structure — at the byte level, inside a
//! single file that the PFS stripes across servers — together with:
//!
//! * [`file::H5File`] — the library: `create_group`, `create_dataset`,
//!   `resize_dataset`, `delete_dataset`, `rename_dataset`, serial and
//!   collective (parallel) variants, each flushing its structures in the
//!   order real HDF5 1.8 does — including the orders that are bugs;
//! * [`mod@format`] — the byte format, plus `check` (≈ `h5check`): parse and
//!   validate a file image into an [`format::H5Logical`] state;
//! * [`tools`] — `h5clear` (superblock repair, with the option knob of
//!   Table 3 bug 13), `h5inspect` (object → byte-range map with JSON
//!   output, used by the semantic pruning of §5.3), and `h5replay`
//!   (replay a preserved set of H5 calls on a fresh stack, §5.1);
//! * [`netcdf`] — a NetCDF-style wrapper (variables over datasets) in
//!   HDF5 format, as in the paper's NetCDF 4.7 setup;
//! * [`call::H5Call`] — the I/O-library-level operation vocabulary whose
//!   preserved subsets define legal golden states at this layer.
//!
//! Besides the paper's fixed H5/CDF programs, the library is exercised
//! by the fuzzer's generated HDF5 call sequences
//! (`workloads::generated`, DESIGN.md §11): bounded
//! create/delete/rename/resize programs — serial and collective —
//! enumerated exhaustively and replayed through the same [`H5File`]
//! API the fixed programs use.

pub mod call;
pub mod file;
pub mod format;
pub mod json;
pub mod netcdf;
pub mod tools;

pub use call::{H5Call, H5Trace};
pub use file::{H5File, H5Spec};
pub use format::{check, check_lenient, H5Error, H5Logical, LenientReport};
pub use netcdf::{nc_check, NcError, NcFile};
pub use tools::{
    h5clear, h5inspect, h5replay, h5replay_with, render_replay_program, ClearOpts, ObjectRange,
    ReplayError,
};
