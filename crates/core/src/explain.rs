//! Bug provenance: minimal witnesses, causal-graph exports, and
//! self-contained explain reports.
//!
//! The checking pipeline ([`crate::check`]) ends with an aggregated list
//! of bugs, each carrying the *first* crash state that exposed it. That
//! witness state is rarely minimal: Algorithm 1's victim closures drop
//! every operation that persistence-depends on the victim, so the
//! witness typically contains ops whose loss is irrelevant to the
//! violation. This module runs *after* classification and, for every
//! reproduced bug, produces a [`BugExplanation`]:
//!
//! 1. **Minimal witness** — delta-debugging (ddmin) over the witness
//!    state's dropped-op set, re-running the golden-master comparison on
//!    each probe, until no single op can be removed while the state
//!    still fails. Probe states are materialized in per-round batches
//!    through the prefix-sharing snapshot engine
//!    ([`crate::snapshot::prepare_states`]), so sibling probes share
//!    their common persisted prefix (COW forks, not replays).
//! 2. **Causal graph** — the happens-before graph over the witness
//!    state's update universe, transitively reduced for readability,
//!    with per-node vector clocks ([`simnet::assign_clocks`]), edges
//!    tagged happens-before vs persists-before
//!    ([`crate::persist::PersistAnalysis`]), violated ordering edges and
//!    the crash frontier highlighted. Exported as DOT and JSON.
//! 3. **State diff** — the crashed state against the closest legal
//!    golden view (client level) and against the no-crash end state
//!    (server level), skipping servers whose COW digests already match.
//!
//! Everything here is presentation-plane: explanations never feed
//! [`crate::check::CheckOutcome::canonical_report`], and a panic during
//! explanation degrades to a warning, not a diagnostic — determinism
//! tests compare byte-identical reports with explain on and off.

use crate::check::{h5_verdict, Inconsistency, LayerVerdict};
use crate::classify::{extended_universe, BugSignature};
use crate::config::CheckConfig;
use crate::emulate::CrashState;
use crate::model::Model;
use crate::persist::PersistAnalysis;
use crate::report::{op_detail, op_sig};
use crate::snapshot::prepare_states;
use crate::stack::Stack;
use h5sim::json::Json;
use h5sim::H5Logical;
use pfs::{recover_and_mount, PfsView, ServerStates};
use simfs::FsState;
use simnet::{ClusterTopology, VectorClock};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use tracer::{BitSet, CausalityGraph, EventId, Process, Recorder};

/// How witness-shrinking probes are materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayEngine {
    /// Batch each ddmin round through the prefix-sharing snapshot plan:
    /// probes sharing a persisted prefix share its materialization
    /// (the default; same engine as crash-state checking).
    PrefixShared,
    /// Fork the baseline and replay each probe's full persisted set
    /// independently — the reference engine the `bench -- explain`
    /// suite compares against.
    PerProbe,
}

impl ReplayEngine {
    /// Config-file spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ReplayEngine::PrefixShared => "prefix-shared",
            ReplayEngine::PerProbe => "per-probe",
        }
    }

    /// Parse the config-file spelling.
    pub fn parse(s: &str) -> Option<ReplayEngine> {
        match s {
            "prefix-shared" => Some(ReplayEngine::PrefixShared),
            "per-probe" => Some(ReplayEngine::PerProbe),
            _ => None,
        }
    }
}

/// One operation of a minimal witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainOp {
    /// Trace event id.
    pub event: EventId,
    /// Full rendering (path, server) via [`crate::report::op_detail`].
    pub label: String,
    /// Aggregation signature via [`crate::report::op_sig`].
    pub sig: String,
    /// Vector-clock components of the event.
    pub clock: Vec<u64>,
}

/// Edge kind in the exported causal graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Happens-before only (no persistence-order guarantee).
    HappensBefore,
    /// Happens-before *and* persists-before (Algorithm 2).
    PersistsBefore,
    /// A happens-before edge the crash state persisted out of order —
    /// the root cause of a reordering bug — or, for atomicity bugs, a
    /// torn atomic-group membership edge.
    Violated,
}

impl EdgeKind {
    /// Stable spelling for JSON export.
    pub fn as_str(&self) -> &'static str {
        match self {
            EdgeKind::HappensBefore => "happens-before",
            EdgeKind::PersistsBefore => "persists-before",
            EdgeKind::Violated => "violated",
        }
    }
}

/// A node of the exported causal graph: one lowermost update of the
/// witness state's probe universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphNode {
    /// Trace event id.
    pub event: EventId,
    /// Full rendering.
    pub label: String,
    /// Aggregation signature.
    pub sig: String,
    /// Vector-clock components.
    pub clock: Vec<u64>,
    /// Persisted in the minimal witness state.
    pub persisted: bool,
    /// Member of the minimal witness (dropped, and necessary).
    pub minimal: bool,
    /// On the crash frontier: persisted with no persisted
    /// happens-before successor.
    pub frontier: bool,
}

/// A directed edge of the exported causal graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphEdge {
    /// Source event.
    pub from: EventId,
    /// Target event.
    pub to: EventId,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// Cost accounting for one witness-shrinking run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Engine the probes ran on.
    pub engine: ReplayEngine,
    /// Recovery-and-compare probes executed.
    pub probes: usize,
    /// ddmin rounds.
    pub rounds: usize,
    /// Dropped ops in the original witness state.
    pub original_ops: usize,
    /// Dropped ops in the minimal witness.
    pub minimal_ops: usize,
    /// Snapshot forks performed for probe materialization.
    pub forks: usize,
    /// Storage events replayed (shared prefixes replay once).
    pub ops_replayed: usize,
    /// `false` if the untorn re-probe of the original witness did not
    /// fail (e.g. the bug needed torn-write widening): the witness is
    /// then reported unshrunk.
    pub reproduced: bool,
}

/// Tree-structured diff of the crashed state against its references.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateDiff {
    /// Client-level diff of the recovered minimal-witness view against
    /// the *nearest* legal golden view (fewest differing entries).
    pub nearest_legal: Vec<String>,
    /// Servers in the cluster.
    pub servers_total: usize,
    /// Servers skipped wholesale because their COW digests matched the
    /// no-crash end state.
    pub servers_skipped: usize,
    /// Per-server tree diff (pre-recovery) against the no-crash end
    /// state, for the servers whose digests differed.
    pub tree: Vec<String>,
}

impl StateDiff {
    /// Total diff entries (the "diff size" of the pinpoint line).
    pub fn size(&self) -> usize {
        self.nearest_legal.len() + self.tree.len()
    }
}

/// The full provenance bundle for one aggregated bug.
#[derive(Debug, Clone)]
pub struct BugExplanation {
    /// Bug signature, as rendered in reports.
    pub signature: String,
    /// Responsible layer.
    pub layer: LayerVerdict,
    /// Weakest violated model.
    pub violated_model: Model,
    /// Crash states aggregated under this cause.
    pub occurrences: usize,
    /// Index of the witness crash state in the enumeration.
    pub state_index: usize,
    /// Minimal set of dropped ops that still reproduces the failure,
    /// sorted by event id.
    pub minimal_witness: Vec<ExplainOp>,
    /// The ordering (or atomic-group) edges the witness violates,
    /// signature-matching pairs first.
    pub violated_edges: Vec<GraphEdge>,
    /// Crash-frontier events (maximal persisted updates).
    pub frontier: Vec<EventId>,
    /// Causal-graph nodes (the witness state's probe universe).
    pub nodes: Vec<GraphNode>,
    /// Causal-graph edges (transitive reduction plus violated edges).
    pub edges: Vec<GraphEdge>,
    /// State diff against nearest-legal and no-crash references.
    pub diff: StateDiff,
    /// Shrinking cost accounting.
    pub shrink: ShrinkStats,
}

/// Everything `explain_bug` needs from the surrounding `check_stack`
/// run. Borrowed wholesale so the explain pass adds no clones to the
/// disabled path.
pub(crate) struct ExplainCtx<'a> {
    pub stack: &'a Stack,
    pub graph: &'a CausalityGraph,
    pub pa: &'a PersistAnalysis,
    pub topo: &'a ClusterTopology,
    pub cfg: &'a CheckConfig,
    pub legal_views: &'a [PfsView],
    pub legal_h5: &'a [H5Logical],
    pub baseline_h5: Option<&'a H5Logical>,
    pub modified_keys: &'a BTreeSet<String>,
}

impl ExplainCtx<'_> {
    /// The same consistency oracle the classifier probes with, inverted:
    /// `true` if the recovered view fails the golden-master comparison
    /// at the layer the run checks top-down.
    fn fails(&self, view: &PfsView) -> bool {
        if let Some(path) = &self.stack.h5_path {
            h5_verdict(
                self.cfg,
                path,
                view,
                self.legal_h5,
                self.baseline_h5,
                self.modified_keys,
            )
            .is_some()
        } else {
            !self.legal_views.contains(view)
        }
    }
}

/// Build the provenance bundle for one bug from its witness crash state.
pub(crate) fn explain_bug(
    ctx: &ExplainCtx,
    bug: &Inconsistency,
    state: &CrashState,
    state_index: usize,
) -> BugExplanation {
    let _span = pc_rt::obs::span_cat("explain.bug", "check");
    let rec = &ctx.stack.rec;
    let universe = extended_universe(rec, ctx.pa, state);
    // The original dropped set: every update of the probe universe the
    // witness state did not persist (victim closures + truncated calls).
    let d0: Vec<EventId> = ctx
        .pa
        .updates()
        .iter()
        .copied()
        .filter(|&u| universe.contains(u) && !state.persisted.contains(u))
        .collect();
    let (minimal, persisted_min, shrink) = shrink_witness(ctx, &universe, &d0);
    pc_rt::obs::count("explain.probes", shrink.probes as u64);
    pc_rt::obs::count("explain.minimal_ops", minimal.len() as u64);

    let clocks = trace_clocks(rec);
    let node_ids: Vec<EventId> = universe.iter().collect();
    let frontier: Vec<EventId> = node_ids
        .iter()
        .copied()
        .filter(|&p| persisted_min.contains(p))
        .filter(|&p| {
            !node_ids
                .iter()
                .any(|&q| q != p && persisted_min.contains(q) && ctx.graph.happens_before(p, q))
        })
        .collect();
    let violated = violated_edges(ctx, &minimal, &persisted_min, &bug.signature);
    let (nodes, edges) = build_graph(
        ctx,
        &node_ids,
        &persisted_min,
        &minimal,
        &frontier,
        &clocks,
        &violated,
    );
    let diff = state_diff(ctx, &universe, &persisted_min);
    let minimal_witness: Vec<ExplainOp> = minimal
        .iter()
        .map(|&e| ExplainOp {
            event: e,
            label: op_detail(rec, ctx.topo, e),
            sig: op_sig(rec, ctx.topo, e),
            clock: clocks[e].components().to_vec(),
        })
        .collect();
    BugExplanation {
        signature: bug.signature.to_string(),
        layer: bug.layer,
        violated_model: bug.violated_model,
        occurrences: bug.occurrences,
        state_index,
        minimal_witness,
        violated_edges: violated,
        frontier,
        nodes,
        edges,
        diff,
        shrink,
    }
}

/// ddmin (Zeller's delta debugging) over the dropped-op set: find a
/// 1-minimal subset whose loss still fails the golden comparison. Each
/// round's candidate sets are materialized as one batch so the
/// prefix-sharing engine can fork their common persisted prefix.
fn shrink_witness(
    ctx: &ExplainCtx,
    universe: &BitSet,
    d0: &[EventId],
) -> (Vec<EventId>, BitSet, ShrinkStats) {
    let engine = ctx.cfg.explain_engine;
    let rec = &ctx.stack.rec;
    let baseline = ctx.stack.pfs.baseline();
    let mut stats = ShrinkStats {
        engine,
        probes: 0,
        rounds: 0,
        original_ops: d0.len(),
        minimal_ops: d0.len(),
        forks: 0,
        ops_replayed: 0,
        reproduced: false,
    };
    // Dropping a set of ops drops their persistence-dependency closures
    // too — the exact recipe Algorithm 1 used to build the state, so a
    // probe is always a *reachable* crash state, never a fabricated one.
    let persisted_for = |dropped: &[EventId]| -> BitSet {
        let mut p = universe.clone();
        for &d in dropped {
            p.subtract(&ctx.pa.depends_on(d, universe));
        }
        p
    };
    let probe_batch = |cands: &[Vec<EventId>], stats: &mut ShrinkStats| -> Vec<bool> {
        let sets: Vec<BitSet> = cands.iter().map(|c| persisted_for(c)).collect();
        stats.probes += sets.len();
        let prepared: Vec<ServerStates> = match engine {
            ReplayEngine::PrefixShared => {
                let synth: Vec<CrashState> = sets
                    .iter()
                    .map(|p| CrashState {
                        cut: p.clone(),
                        victims: Vec::new(),
                        persisted: p.clone(),
                    })
                    .collect();
                let plan = prepare_states(rec, baseline, &synth);
                stats.forks += plan.stats.forks;
                stats.ops_replayed += plan.stats.ops_replayed;
                plan.prepared
            }
            ReplayEngine::PerProbe => sets
                .iter()
                .map(|p| {
                    stats.forks += 1;
                    stats.ops_replayed += p.count();
                    let mut st = baseline.fork();
                    st.apply_events(rec, p.iter());
                    st
                })
                .collect(),
        };
        prepared
            .into_iter()
            .map(|st| {
                // Recovery mutates; fork so shared prefixes stay intact.
                let mut st = st.fork();
                let (_, view) = recover_and_mount(ctx.stack.pfs.as_ref(), &mut st);
                ctx.fails(&view)
            })
            .collect()
    };
    if d0.is_empty() {
        return (Vec::new(), persisted_for(&[]), stats);
    }
    // Untorn reproduction check: probes never widen with torn writes, so
    // a bug only reachable through tearing keeps its original witness.
    stats.reproduced = probe_batch(&[d0.to_vec()], &mut stats)[0];
    let mut current: Vec<EventId> = d0.to_vec();
    if stats.reproduced {
        let mut n = 2usize.min(current.len());
        while current.len() >= 2 && stats.rounds < 64 {
            stats.rounds += 1;
            let chunk_len = current.len().div_ceil(n);
            let subsets: Vec<Vec<EventId>> =
                current.chunks(chunk_len).map(|c| c.to_vec()).collect();
            let nn = subsets.len();
            let mut cands: Vec<(Vec<EventId>, bool)> =
                subsets.iter().cloned().map(|s| (s, true)).collect();
            if nn > 2 {
                for i in 0..nn {
                    let comp: Vec<EventId> = subsets
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .flat_map(|(_, s)| s.iter().copied())
                        .collect();
                    cands.push((comp, false));
                }
            }
            let probes: Vec<Vec<EventId>> = cands.iter().map(|(c, _)| c.clone()).collect();
            let results = probe_batch(&probes, &mut stats);
            if let Some(pos) = results.iter().position(|&f| f) {
                let (c, is_subset) = &cands[pos];
                current = c.clone();
                n = if *is_subset {
                    2
                } else {
                    n.saturating_sub(1).max(2)
                };
                n = n.min(current.len().max(1));
            } else if nn >= current.len() {
                break; // granularity 1 and nothing fails: 1-minimal
            } else {
                n = (n * 2).min(current.len());
            }
        }
    }
    current.sort_unstable();
    stats.minimal_ops = current.len();
    let persisted_min = persisted_for(&current);
    (current, persisted_min, stats)
}

/// Happens-before edges the minimal witness persisted out of order: a
/// dropped op `a` with a persisted happens-before successor `b` and no
/// persists-before guarantee between them. When no such edge exists the
/// bug is an atomicity violation; the violated "edges" are then the
/// dropped↔persisted pairs inside the signature's atomic group.
fn violated_edges(
    ctx: &ExplainCtx,
    minimal: &[EventId],
    persisted: &BitSet,
    signature: &BugSignature,
) -> Vec<GraphEdge> {
    let rec = &ctx.stack.rec;
    let mut out: Vec<GraphEdge> = Vec::new();
    for &a in minimal {
        for b in persisted.iter() {
            if ctx.graph.happens_before(a, b) && !ctx.pa.persists_before(a, b) {
                out.push(GraphEdge {
                    from: a,
                    to: b,
                    kind: EdgeKind::Violated,
                });
            }
        }
    }
    if out.is_empty() {
        for &a in minimal {
            let sa = op_sig(rec, ctx.topo, a);
            if !signature.members.contains(&sa) {
                continue;
            }
            for b in persisted.iter() {
                let sb = op_sig(rec, ctx.topo, b);
                if signature.members.contains(&sb) && sb != sa {
                    out.push(GraphEdge {
                        from: a,
                        to: b,
                        kind: EdgeKind::Violated,
                    });
                }
            }
        }
    }
    // Deterministic order, edges matching the signature pair first.
    let matches_sig = |e: &GraphEdge| {
        let sa = op_sig(rec, ctx.topo, e.from);
        let sb = op_sig(rec, ctx.topo, e.to);
        !(signature.members.first() == Some(&sa) && signature.members.get(1) == Some(&sb))
    };
    out.sort_by_key(|e| (matches_sig(e), e.from, e.to));
    out.dedup();
    out
}

/// Vector clocks for every trace event: each event merges the clocks of
/// its causal predecessors (program order, caller links, message edges).
/// The same adapter the cross-check test drives.
fn trace_clocks(rec: &Recorder) -> Vec<VectorClock> {
    let mut procs: Vec<Process> = rec.events().iter().map(|e| e.proc).collect();
    procs.sort();
    procs.dedup();
    let pidx = |p: Process| procs.iter().position(|&q| q == p).unwrap();
    let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); rec.len()];
    for &(from, to) in rec.extra_edges() {
        incoming[to].push(from);
    }
    let events: Vec<(usize, Vec<usize>)> = rec
        .events()
        .iter()
        .map(|e| {
            let mut preds: Vec<usize> = e.parent.into_iter().collect();
            preds.extend(&incoming[e.id]);
            (pidx(e.proc), preds)
        })
        .collect();
    simnet::assign_clocks(procs.len(), &events)
}

/// Nodes + transitively-reduced happens-before edges over the witness
/// universe, with the violated edges overlaid.
fn build_graph(
    ctx: &ExplainCtx,
    node_ids: &[EventId],
    persisted: &BitSet,
    minimal: &[EventId],
    frontier: &[EventId],
    clocks: &[VectorClock],
    violated: &[GraphEdge],
) -> (Vec<GraphNode>, Vec<GraphEdge>) {
    let rec = &ctx.stack.rec;
    let nodes: Vec<GraphNode> = node_ids
        .iter()
        .map(|&e| GraphNode {
            event: e,
            label: op_detail(rec, ctx.topo, e),
            sig: op_sig(rec, ctx.topo, e),
            clock: clocks[e].components().to_vec(),
            persisted: persisted.contains(e),
            minimal: minimal.contains(&e),
            frontier: frontier.contains(&e),
        })
        .collect();
    let mut edges: Vec<GraphEdge> = Vec::new();
    for &a in node_ids {
        for &b in node_ids {
            if a == b || !ctx.graph.happens_before(a, b) {
                continue;
            }
            // Transitive reduction: keep a→b only if no c lies between.
            let direct = !node_ids.iter().any(|&c| {
                c != a && c != b && ctx.graph.happens_before(a, c) && ctx.graph.happens_before(c, b)
            });
            if direct {
                let kind = if ctx.pa.persists_before(a, b) {
                    EdgeKind::PersistsBefore
                } else {
                    EdgeKind::HappensBefore
                };
                edges.push(GraphEdge {
                    from: a,
                    to: b,
                    kind,
                });
            }
        }
    }
    for v in violated {
        if let Some(e) = edges.iter_mut().find(|e| e.from == v.from && e.to == v.to) {
            e.kind = EdgeKind::Violated;
        } else {
            edges.push(*v);
        }
    }
    (nodes, edges)
}

/// Upper bound on state-diff lines kept per bundle (the tail is
/// summarized, never silently dropped).
const DIFF_CAP: usize = 64;

/// Diff the minimal witness state against (a) the nearest legal golden
/// view after recovery and (b) the no-crash end state before recovery,
/// skipping servers whose COW digests already match.
fn state_diff(ctx: &ExplainCtx, universe: &BitSet, persisted_min: &BitSet) -> StateDiff {
    let rec = &ctx.stack.rec;
    let baseline = ctx.stack.pfs.baseline();
    let mut crashed = baseline.fork();
    crashed.apply_events(rec, persisted_min.iter());
    let mut full = baseline.fork();
    full.apply_events(rec, universe.iter());
    let cd = crashed.per_server_digests();
    let fd = full.per_server_digests();
    let mut tree: Vec<String> = Vec::new();
    let mut skipped = 0usize;
    for (i, (c, f)) in cd.iter().zip(fd.iter()).enumerate() {
        if c == f {
            skipped += 1;
            continue;
        }
        let sid = i as u32;
        match (
            crashed.server(sid).try_as_fs(),
            full.server(sid).try_as_fs(),
        ) {
            (Some(a), Some(b)) => tree.extend(fs_tree_diff(sid, a, b)),
            _ => tree.push(format!("server {sid}: block store contents differ")),
        }
    }
    if tree.len() > DIFF_CAP {
        let extra = tree.len() - DIFF_CAP;
        tree.truncate(DIFF_CAP);
        tree.push(format!("... ({extra} more entries)"));
    }
    let mut to_recover = crashed.fork();
    let (_, view) = recover_and_mount(ctx.stack.pfs.as_ref(), &mut to_recover);
    let nearest_legal = ctx
        .legal_views
        .iter()
        .map(|lv| view.diff(lv))
        .min_by_key(|d| d.len())
        .unwrap_or_default();
    StateDiff {
        nearest_legal,
        servers_total: crashed.len(),
        servers_skipped: skipped,
        tree,
    }
}

/// Path-by-path diff of one server's local FS against the no-crash end
/// state (both trees walk sorted, so output order is deterministic).
fn fs_tree_diff(server: u32, crashed: &FsState, full: &FsState) -> Vec<String> {
    let a: BTreeSet<String> = crashed.walk().into_iter().collect();
    let b: BTreeSet<String> = full.walk().into_iter().collect();
    let mut out = Vec::new();
    for p in a.union(&b) {
        let (ina, inb) = (a.contains(p), b.contains(p));
        if ina && inb {
            let (da, db) = (crashed.is_dir(p), full.is_dir(p));
            if da || db {
                if da != db {
                    out.push(format!("server {server}: {p}: directory/file mismatch"));
                }
                continue;
            }
            let ca = crashed.read(p).ok();
            let cb = full.read(p).ok();
            if ca != cb {
                out.push(format!(
                    "server {server}: {p}: content differs ({} vs {} bytes)",
                    ca.map_or(0, <[u8]>::len),
                    cb.map_or(0, <[u8]>::len),
                ));
            }
        } else if ina {
            out.push(format!("server {server}: {p}: only in crash state"));
        } else {
            out.push(format!("server {server}: {p}: lost in crash"));
        }
    }
    out
}

/// Escape a string for a double-quoted DOT attribute.
fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl BugExplanation {
    /// Signature of a graph node, for rendering (`e<id>` if unknown).
    fn sig_of(&self, e: EventId) -> String {
        self.nodes
            .iter()
            .find(|n| n.event == e)
            .map(|n| n.sig.clone())
            .unwrap_or_else(|| format!("e{e}"))
    }

    /// One-line summary for `PC_TRACE=summary`: minimal-witness size,
    /// the violated edge, and the diff size.
    pub fn pinpoint(&self) -> String {
        let cause = match self.violated_edges.first() {
            Some(e) => format!("violated {} -> {}", self.sig_of(e.from), self.sig_of(e.to)),
            None => "violated atomic group".to_string(),
        };
        format!(
            "{} [{:?}]: witness {}/{} ops, {}, diff {} entries",
            self.signature,
            self.layer,
            self.shrink.minimal_ops,
            self.shrink.original_ops,
            cause,
            self.diff.size(),
        )
    }

    /// Graphviz DOT rendering of the causal graph: minimal-witness
    /// nodes pink/bold, persisted nodes gray, frontier nodes doubled
    /// and blue, dropped nodes dashed; violated edges red.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph explain {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  labelloc=\"t\";");
        let _ = writeln!(out, "  label=\"{}\";", dot_escape(&self.signature));
        let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");
        for n in &self.nodes {
            let clock = n
                .clock
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(" ");
            let label = format!("e{}\\n{}\\n[{clock}]", n.event, dot_escape(&n.label));
            let style = if n.minimal {
                ", style=\"filled,bold\", fillcolor=\"#f4cccc\""
            } else if n.frontier {
                ", style=filled, fillcolor=\"#cfe2f3\", peripheries=2"
            } else if n.persisted {
                ", style=filled, fillcolor=\"#eeeeee\""
            } else {
                ", style=dashed, color=gray50"
            };
            let _ = writeln!(out, "  e{} [label=\"{label}\"{style}];", n.event);
        }
        for e in &self.edges {
            let attrs = match e.kind {
                EdgeKind::HappensBefore => " [color=gray50, style=dashed]",
                EdgeKind::PersistsBefore => " [color=black]",
                EdgeKind::Violated => " [color=red, penwidth=2.0, label=\"violated\"]",
            };
            let _ = writeln!(out, "  e{} -> e{}{attrs};", e.from, e.to);
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// JSON rendering (via `h5sim::json`) of the full bundle — the
    /// machine-readable counterpart of the Markdown report.
    pub fn to_json(&self) -> Json {
        let op_json = |o: &ExplainOp| {
            Json::Obj(vec![
                ("event".into(), Json::Int(o.event as u64)),
                ("label".into(), Json::Str(o.label.clone())),
                ("sig".into(), Json::Str(o.sig.clone())),
                (
                    "clock".into(),
                    Json::Arr(o.clock.iter().map(|&c| Json::Int(c)).collect()),
                ),
            ])
        };
        let edge_json = |e: &GraphEdge| {
            Json::Obj(vec![
                ("from".into(), Json::Int(e.from as u64)),
                ("to".into(), Json::Int(e.to as u64)),
                ("kind".into(), Json::Str(e.kind.as_str().into())),
            ])
        };
        let node_json = |n: &GraphNode| {
            Json::Obj(vec![
                ("event".into(), Json::Int(n.event as u64)),
                ("label".into(), Json::Str(n.label.clone())),
                ("sig".into(), Json::Str(n.sig.clone())),
                (
                    "clock".into(),
                    Json::Arr(n.clock.iter().map(|&c| Json::Int(c)).collect()),
                ),
                ("persisted".into(), Json::Bool(n.persisted)),
                ("minimal".into(), Json::Bool(n.minimal)),
                ("frontier".into(), Json::Bool(n.frontier)),
            ])
        };
        let strings = |v: &[String]| Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect());
        Json::Obj(vec![
            ("signature".into(), Json::Str(self.signature.clone())),
            ("layer".into(), Json::Str(format!("{:?}", self.layer))),
            (
                "violated_model".into(),
                Json::Str(self.violated_model.as_str().into()),
            ),
            ("occurrences".into(), Json::Int(self.occurrences as u64)),
            ("state_index".into(), Json::Int(self.state_index as u64)),
            (
                "minimal_witness".into(),
                Json::Arr(self.minimal_witness.iter().map(op_json).collect()),
            ),
            (
                "violated_edges".into(),
                Json::Arr(self.violated_edges.iter().map(edge_json).collect()),
            ),
            (
                "frontier".into(),
                Json::Arr(self.frontier.iter().map(|&e| Json::Int(e as u64)).collect()),
            ),
            (
                "nodes".into(),
                Json::Arr(self.nodes.iter().map(node_json).collect()),
            ),
            (
                "edges".into(),
                Json::Arr(self.edges.iter().map(edge_json).collect()),
            ),
            (
                "diff".into(),
                Json::Obj(vec![
                    ("nearest_legal".into(), strings(&self.diff.nearest_legal)),
                    (
                        "servers_total".into(),
                        Json::Int(self.diff.servers_total as u64),
                    ),
                    (
                        "servers_skipped".into(),
                        Json::Int(self.diff.servers_skipped as u64),
                    ),
                    ("tree".into(), strings(&self.diff.tree)),
                ]),
            ),
            (
                "shrink".into(),
                Json::Obj(vec![
                    (
                        "engine".into(),
                        Json::Str(self.shrink.engine.as_str().into()),
                    ),
                    ("probes".into(), Json::Int(self.shrink.probes as u64)),
                    ("rounds".into(), Json::Int(self.shrink.rounds as u64)),
                    (
                        "original_ops".into(),
                        Json::Int(self.shrink.original_ops as u64),
                    ),
                    (
                        "minimal_ops".into(),
                        Json::Int(self.shrink.minimal_ops as u64),
                    ),
                    ("forks".into(), Json::Int(self.shrink.forks as u64)),
                    (
                        "ops_replayed".into(),
                        Json::Int(self.shrink.ops_replayed as u64),
                    ),
                    ("reproduced".into(), Json::Bool(self.shrink.reproduced)),
                ]),
            ),
        ])
    }

    /// Self-contained Markdown report. `context` names the run (e.g.
    /// `"ARVR on BeeGFS"`); the `.dot`/`.json` siblings carry the graph.
    pub fn to_markdown(&self, context: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Bug: `{}`\n", self.signature);
        let _ = writeln!(out, "Context: {context}\n");
        let _ = writeln!(out, "- **Layer:** {:?}", self.layer);
        let _ = writeln!(
            out,
            "- **Violated model:** {}",
            self.violated_model.as_str()
        );
        let _ = writeln!(out, "- **Occurrences:** {} crash states", self.occurrences);
        let _ = writeln!(out, "- **Witness crash state:** #{}", self.state_index);
        let _ = writeln!(
            out,
            "- **Minimal witness:** {} of {} dropped ops ({} rounds, {} probes, engine {}{})\n",
            self.shrink.minimal_ops,
            self.shrink.original_ops,
            self.shrink.rounds,
            self.shrink.probes,
            self.shrink.engine.as_str(),
            if self.shrink.reproduced {
                ""
            } else {
                "; NOT reproduced untorn — witness unshrunk"
            },
        );
        let _ = writeln!(out, "## Minimal witness\n");
        let _ = writeln!(out, "| event | operation | vector clock |");
        let _ = writeln!(out, "|---|---|---|");
        for o in &self.minimal_witness {
            let clock = o
                .clock
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(out, "| e{} | `{}` | [{clock}] |", o.event, o.label);
        }
        let _ = writeln!(out, "\n## Violated ordering\n");
        if self.violated_edges.is_empty() {
            let _ = writeln!(
                out,
                "No single ordering edge: the signature's atomic group was \
                 persisted partially.",
            );
        } else {
            for e in &self.violated_edges {
                let _ = writeln!(
                    out,
                    "- `{}` must persist before `{}` (e{} -> e{}), but the \
                     crash state kept the latter without the former.",
                    self.sig_of(e.from),
                    self.sig_of(e.to),
                    e.from,
                    e.to,
                );
            }
        }
        let _ = writeln!(out, "\n## Crash frontier\n");
        for &f in &self.frontier {
            let label = self
                .nodes
                .iter()
                .find(|n| n.event == f)
                .map(|n| n.label.clone())
                .unwrap_or_default();
            let _ = writeln!(out, "- e{f} `{label}`");
        }
        let _ = writeln!(out, "\n## State diff\n");
        let _ = writeln!(
            out,
            "Recovered witness view vs nearest legal golden view ({} entries):\n",
            self.diff.nearest_legal.len(),
        );
        for d in &self.diff.nearest_legal {
            let _ = writeln!(out, "- {d}");
        }
        let _ = writeln!(
            out,
            "\nPre-recovery server trees vs the no-crash end state \
             ({} of {} servers digest-identical, skipped):\n",
            self.diff.servers_skipped, self.diff.servers_total,
        );
        for d in &self.diff.tree {
            let _ = writeln!(out, "- {d}");
        }
        let _ = writeln!(out, "\n## Causal graph\n");
        let _ = writeln!(
            out,
            "{} nodes, {} edges ({} violated) — see the adjacent `.dot` \
             (Graphviz) and `.json` files; red edges are ordering \
             requirements the crash state broke.",
            self.nodes.len(),
            self.edges.len(),
            self.violated_edges.len(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BugExplanation {
        BugExplanation {
            signature: "append(file chunk)@storage -> rename(d_entry)@metadata".into(),
            layer: LayerVerdict::PfsBug,
            violated_model: Model::Causal,
            occurrences: 3,
            state_index: 7,
            minimal_witness: vec![ExplainOp {
                event: 4,
                label: "append(/chunks/f0.0)@storage#2".into(),
                sig: "append(file chunk)@storage".into(),
                clock: vec![1, 0, 2],
            }],
            violated_edges: vec![GraphEdge {
                from: 4,
                to: 9,
                kind: EdgeKind::Violated,
            }],
            frontier: vec![9],
            nodes: vec![
                GraphNode {
                    event: 4,
                    label: "append(/chunks/f0.0)@storage#2".into(),
                    sig: "append(file chunk)@storage".into(),
                    clock: vec![1, 0, 2],
                    persisted: false,
                    minimal: true,
                    frontier: false,
                },
                GraphNode {
                    event: 9,
                    label: "rename(/dentries/root/tmp -> /dentries/root/file)@metadata#0".into(),
                    sig: "rename(d_entry)@metadata".into(),
                    clock: vec![2, 1, 2],
                    persisted: true,
                    minimal: false,
                    frontier: true,
                },
            ],
            edges: vec![GraphEdge {
                from: 4,
                to: 9,
                kind: EdgeKind::Violated,
            }],
            diff: StateDiff {
                nearest_legal: vec!["file /file content differs".into()],
                servers_total: 4,
                servers_skipped: 3,
                tree: vec!["server 2: /chunks/f0.0: lost in crash".into()],
            },
            shrink: ShrinkStats {
                engine: ReplayEngine::PrefixShared,
                probes: 6,
                rounds: 2,
                original_ops: 3,
                minimal_ops: 1,
                forks: 6,
                ops_replayed: 12,
                reproduced: true,
            },
        }
    }

    #[test]
    fn replay_engine_round_trips() {
        for e in [ReplayEngine::PrefixShared, ReplayEngine::PerProbe] {
            assert_eq!(ReplayEngine::parse(e.as_str()), Some(e));
        }
        assert_eq!(ReplayEngine::parse("wat"), None);
    }

    #[test]
    fn dot_is_balanced_and_declares_nodes() {
        let dot = sample().to_dot();
        assert_eq!(dot.matches('{').count(), dot.matches('}').count(), "{dot}");
        assert!(dot.contains("e4 ["));
        assert!(dot.contains("e9 ["));
        assert!(dot.contains("e4 -> e9"));
        assert!(dot.contains("color=red"));
        assert!(dot.contains("fillcolor=\"#f4cccc\"")); // minimal
        assert!(dot.contains("peripheries=2")); // frontier
    }

    #[test]
    fn dot_escapes_quotes() {
        assert_eq!(dot_escape(r#"a "b" \c"#), r#"a \"b\" \\c"#);
    }

    #[test]
    fn json_round_trips_through_parser() {
        let e = sample();
        let text = e.to_json().pretty();
        let parsed = Json::parse(&text).expect("self-produced JSON parses");
        assert_eq!(
            parsed.get("signature").and_then(Json::as_str),
            Some(e.signature.as_str())
        );
        assert_eq!(
            parsed
                .get("shrink")
                .and_then(|s| s.get("minimal_ops"))
                .and_then(Json::as_int),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("nodes")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn pinpoint_names_the_edge_and_sizes() {
        let p = sample().pinpoint();
        assert!(p.contains("witness 1/3 ops"), "{p}");
        assert!(
            p.contains("violated append(file chunk)@storage -> rename(d_entry)@metadata"),
            "{p}"
        );
        assert!(p.contains("diff 2 entries"), "{p}");
    }

    #[test]
    fn markdown_is_self_contained() {
        let md = sample().to_markdown("ARVR on BeeGFS");
        assert!(md.starts_with("# Bug:"));
        assert!(md.contains("Context: ARVR on BeeGFS"));
        assert!(md.contains("## Minimal witness"));
        assert!(md.contains("## Violated ordering"));
        assert!(md.contains("## Crash frontier"));
        assert!(md.contains("## State diff"));
        assert!(md.contains("3 of 4 servers digest-identical"));
    }
}
