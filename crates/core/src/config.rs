//! The ParaCrash configuration (§5).
//!
//! The original framework takes a configuration file specifying the
//! system configuration (mount point, storage directories, stripe size,
//! server/client counts), the crash-consistency model for each layer,
//! and the exploration mode. [`CheckConfig`] is that file;
//! [`CheckConfig::parse`] reads the same key-value format, and
//! [`paper_default`](CheckConfig::paper_default) mirrors Table 2.

use crate::explain::ReplayEngine;
use crate::explore::ExploreMode;
use crate::model::Model;
use h5sim::ClearOpts;
use simnet::FaultConfig;

/// Everything a check run needs besides the traced stack itself.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Crash-consistency model the PFS layer is tested against
    /// (the paper: causal, which every studied PFS nominally satisfies).
    pub pfs_model: Model,
    /// Crash-consistency model the I/O library layer is tested against
    /// (the paper tests baseline and causal).
    pub h5_model: Model,
    /// Maximum number of crash victims (Algorithm 1's `k`; the paper
    /// reports k = 1 suffices).
    pub k: usize,
    /// Exploration strategy.
    pub mode: ExploreMode,
    /// `h5clear` options used before declaring an H5 state inconsistent
    /// (the sensitivity knob of Table 3 bug 13).
    pub clear_opts: ClearOpts,
    /// Stripe size in bytes (Table 2: 128 KiB).
    pub stripe_size: u64,
    /// Number of metadata and storage servers.
    pub servers: (u32, u32),
    /// Number of application clients.
    pub clients: u32,
    /// Maximum entries held by each golden-state replay cache before
    /// LRU eviction (0 disables caching). Large enough that the paper's
    /// workloads never evict; a bound, not a tuning knob.
    pub replay_cache_cap: usize,
    /// Seeded fault plane for the run: RPC delivery faults during the
    /// traced workload plus torn-write widening of crash states. The
    /// default injects nothing and leaves every code path untouched.
    pub faults: FaultConfig,
    /// Stop exploring at the first inconsistent or diagnostic crash
    /// state instead of checking the full enumeration.
    pub fail_fast: bool,
    /// Build a provenance bundle ([`crate::explain::BugExplanation`])
    /// for every reproduced bug: minimal witness, causal-graph export,
    /// state diff. Off by default — the explain pass re-runs recovery
    /// on shrinking probes, which costs real time on buggy cells.
    pub explain: bool,
    /// How witness-shrinking probes are materialized (prefix-shared COW
    /// batches by default; `per-probe` is the reference engine the
    /// explain bench compares against).
    pub explain_engine: ReplayEngine,
    /// Collect the digests of the distinct *representative* crash
    /// states into [`crate::check::CheckOutcome::rep_digests`]
    /// (Pathfinder-style state identity for the campaign corpus). Off
    /// by default — digesting materialized states costs a tree walk per
    /// representative. Programmatic only: not part of the
    /// configuration-file format.
    pub collect_rep_digests: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl CheckConfig {
    /// The paper's evaluation setup: causal model for the PFS, causal
    /// for the I/O library (baseline violations are also causal
    /// violations and are reported as such), k = 1, optimized
    /// exploration, 2+2 servers, 2 clients, 128 KiB stripes.
    pub fn paper_default() -> Self {
        CheckConfig {
            pfs_model: Model::Causal,
            h5_model: Model::Causal,
            k: 1,
            mode: ExploreMode::Optimized,
            clear_opts: ClearOpts::default(),
            stripe_size: 128 * 1024,
            servers: (2, 2),
            clients: 2,
            replay_cache_cap: 4096,
            faults: FaultConfig::disabled(),
            fail_fast: false,
            explain: false,
            explain_engine: ReplayEngine::PrefixShared,
            collect_rep_digests: false,
        }
    }

    /// Parse the `key = value` configuration-file format.
    ///
    /// Recognized keys: `pfs_model`, `h5_model`, `k`, `mode`,
    /// `h5clear_increase_eof`, `stripe_size`, `meta_servers`,
    /// `storage_servers`, `clients`, `replay_cache_cap`, `faults`
    /// (a [`FaultConfig::parse_spec`] string), `fail_fast`, `explain`
    /// and `explain_engine` (`prefix-shared` | `per-probe`). Unknown
    /// keys are rejected.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = Self::paper_default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("line {}: bad {what}: {value}", lineno + 1);
            match key {
                "pfs_model" => cfg.pfs_model = Model::parse(value).ok_or_else(|| bad("model"))?,
                "h5_model" => cfg.h5_model = Model::parse(value).ok_or_else(|| bad("model"))?,
                "k" => cfg.k = value.parse().map_err(|_| bad("k"))?,
                "mode" => cfg.mode = ExploreMode::parse(value).ok_or_else(|| bad("mode"))?,
                "h5clear_increase_eof" => {
                    cfg.clear_opts.increase_eof = value.parse().map_err(|_| bad("bool"))?
                }
                "stripe_size" => cfg.stripe_size = value.parse().map_err(|_| bad("size"))?,
                "meta_servers" => cfg.servers.0 = value.parse().map_err(|_| bad("count"))?,
                "storage_servers" => cfg.servers.1 = value.parse().map_err(|_| bad("count"))?,
                "clients" => cfg.clients = value.parse().map_err(|_| bad("count"))?,
                "replay_cache_cap" => {
                    cfg.replay_cache_cap = value.parse().map_err(|_| bad("count"))?
                }
                "faults" => {
                    cfg.faults = FaultConfig::parse_spec(value)
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?
                }
                "fail_fast" => cfg.fail_fast = value.parse().map_err(|_| bad("bool"))?,
                "explain" => cfg.explain = value.parse().map_err(|_| bad("bool"))?,
                "explain_engine" => {
                    cfg.explain_engine = ReplayEngine::parse(value).ok_or_else(|| bad("engine"))?
                }
                other => return Err(format!("line {}: unknown key {other}", lineno + 1)),
            }
        }
        Ok(cfg)
    }

    /// Render back to the configuration-file format.
    pub fn render(&self) -> String {
        format!(
            "pfs_model = {}\nh5_model = {}\nk = {}\nmode = {}\n\
             h5clear_increase_eof = {}\nstripe_size = {}\n\
             meta_servers = {}\nstorage_servers = {}\nclients = {}\n\
             replay_cache_cap = {}\nfaults = {}\nfail_fast = {}\n\
             explain = {}\nexplain_engine = {}\n",
            self.pfs_model.as_str(),
            self.h5_model.as_str(),
            self.k,
            self.mode.as_str(),
            self.clear_opts.increase_eof,
            self.stripe_size,
            self.servers.0,
            self.servers.1,
            self.clients,
            self.replay_cache_cap,
            self.faults.render_spec(),
            self.fail_fast,
            self.explain,
            self.explain_engine.as_str(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table2() {
        let cfg = CheckConfig::paper_default();
        assert_eq!(cfg.stripe_size, 128 * 1024);
        assert_eq!(cfg.servers, (2, 2));
        assert_eq!(cfg.clients, 2);
        assert_eq!(cfg.k, 1);
        assert_eq!(cfg.pfs_model, Model::Causal);
    }

    #[test]
    fn parse_roundtrip() {
        let cfg = CheckConfig::paper_default();
        let parsed = CheckConfig::parse(&cfg.render()).unwrap();
        assert_eq!(parsed.pfs_model, cfg.pfs_model);
        assert_eq!(parsed.stripe_size, cfg.stripe_size);
        assert_eq!(parsed.mode, cfg.mode);
        assert_eq!(parsed.replay_cache_cap, cfg.replay_cache_cap);
    }

    #[test]
    fn parse_faults_and_fail_fast() {
        let cfg = CheckConfig::parse(
            "faults = seed=7,drop=0.2,torn=true
fail_fast = true
",
        )
        .unwrap();
        assert_eq!(cfg.faults.seed, 7);
        assert!(cfg.faults.torn_writes && cfg.faults.enabled());
        assert!(cfg.fail_fast);
        let rt = CheckConfig::parse(&cfg.render()).unwrap();
        assert_eq!(rt.faults, cfg.faults);
        assert!(rt.fail_fast);
        assert!(CheckConfig::parse("faults = drop=2.0").is_err());
    }

    #[test]
    fn parse_explain_knobs() {
        let cfg = CheckConfig::parse("explain = true\nexplain_engine = per-probe\n").unwrap();
        assert!(cfg.explain);
        assert_eq!(cfg.explain_engine, ReplayEngine::PerProbe);
        let rt = CheckConfig::parse(&cfg.render()).unwrap();
        assert!(rt.explain);
        assert_eq!(rt.explain_engine, ReplayEngine::PerProbe);
        assert!(!CheckConfig::paper_default().explain);
        assert!(CheckConfig::parse("explain_engine = wat").is_err());
    }

    #[test]
    fn parse_replay_cache_cap() {
        let cfg = CheckConfig::parse("replay_cache_cap = 16\n").unwrap();
        assert_eq!(cfg.replay_cache_cap, 16);
        assert!(CheckConfig::parse("replay_cache_cap = lots").is_err());
    }

    #[test]
    fn parse_overrides_and_comments() {
        let cfg = CheckConfig::parse(
            "# test config\npfs_model = commit\nk = 2\nmode = brute-force\nh5clear_increase_eof = true\n",
        )
        .unwrap();
        assert_eq!(cfg.pfs_model, Model::Commit);
        assert_eq!(cfg.k, 2);
        assert_eq!(cfg.mode, ExploreMode::BruteForce);
        assert!(cfg.clear_opts.increase_eof);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CheckConfig::parse("pfs_model = wat").is_err());
        assert!(CheckConfig::parse("unknown_key = 1").is_err());
        assert!(CheckConfig::parse("no equals sign").is_err());
    }
}
