//! The stack under test: PFS + traces + replay machinery.
//!
//! A [`Stack`] bundles a live PFS instance with the recorders for both
//! phases of a ParaCrash run (§5: a *preamble* program initializes the
//! storage system, then the *test* program runs and is traced). The
//! consistency checker replays preserved subsets of the recorded calls
//! on fresh instances built by the [`StackFactory`] to produce legal
//! golden states.

use h5sim::{H5Call, H5Trace};
use pfs::{ClientTrace, Pfs, PfsCall, PfsView};
use std::collections::BTreeSet;
use tracer::{Process, Recorder};

/// Builds a fresh, empty instance of the PFS configuration under test.
pub type StackFactory = Box<dyn Fn() -> Box<dyn Pfs>>;

/// The traced stack for one test-program run.
pub struct Stack {
    /// The PFS instance (holds live and baseline server states).
    pub pfs: Box<dyn Pfs>,
    /// Test-phase trace (the preamble recorder is discarded at seal).
    pub rec: Recorder,
    /// PFS-level calls of the preamble, replayed verbatim before any
    /// preserved subset.
    pub pre_calls: Vec<(Process, PfsCall)>,
    /// PFS-level calls of the test phase.
    pub calls: ClientTrace,
    /// I/O-library-level calls of the preamble.
    pub pre_h5: Vec<(u32, H5Call)>,
    /// I/O-library-level calls of the test phase.
    pub h5: H5Trace,
    /// Path of the HDF5/NetCDF file, when the program uses the I/O
    /// library layer.
    pub h5_path: Option<String>,
    /// Ranks participating in collective H5 calls.
    pub h5_ranks: Vec<u32>,
    /// Library configuration used by the traced run (replays must
    /// match).
    pub h5_spec: h5sim::H5Spec,
}

impl Stack {
    /// Wrap a freshly-built PFS.
    pub fn new(pfs: Box<dyn Pfs>) -> Stack {
        Stack {
            pfs,
            rec: Recorder::new(),
            pre_calls: Vec::new(),
            calls: ClientTrace::new(),
            pre_h5: Vec::new(),
            h5: H5Trace::new(),
            h5_path: None,
            h5_ranks: vec![0],
            h5_spec: h5sim::H5Spec::default(),
        }
    }

    /// Issue one POSIX-level PFS call from `client`.
    pub fn posix(&mut self, client: u32, call: PfsCall) {
        // The traced run drives calls the workload itself constructed; a
        // dispatch error means the workload is malformed. The checker runs
        // this phase under catch_unwind and surfaces the panic message.
        let ev = self
            .pfs
            .dispatch(&mut self.rec, Process::Client(client), &call, None)
            .unwrap_or_else(|e| panic!("posix dispatch of {}: {e}", call.name()));
        self.calls.push(ev, Process::Client(client), call);
    }

    /// End the preamble: snapshot the baseline, archive the preamble
    /// calls, and start the test-phase trace.
    pub fn seal_preamble(&mut self) {
        self.pfs.seal_baseline();
        self.pre_calls = std::mem::take(&mut self.calls)
            .entries()
            .iter()
            .map(|(_, p, c)| (*p, c.clone()))
            .collect();
        self.pre_h5 = std::mem::take(&mut self.h5)
            .entries()
            .iter()
            .map(|(_, r, c)| (*r, c.clone()))
            .collect();
        self.rec = Recorder::new();
    }

    /// The journaling mode of a server's local FS (block servers: none).
    pub fn journal_of(&self, server: u32) -> Option<simfs::JournalMode> {
        self.pfs.baseline().server(server).journal()
    }
}

/// Validate that a PFS call sequence is executable (the models may
/// propose subsets whose prerequisites were dropped — those denote no
/// legal state). Mirrors the namespace effects of each call.
fn executable(calls: &[(Process, PfsCall)]) -> bool {
    let mut dirs: BTreeSet<String> = BTreeSet::new();
    dirs.insert("/".into());
    let mut files: BTreeSet<String> = BTreeSet::new();
    let parent = |p: &str| -> String {
        match p.rfind('/') {
            Some(0) => "/".into(),
            Some(i) => p[..i].to_string(),
            None => "/".into(),
        }
    };
    for (_, call) in calls {
        match call {
            PfsCall::Creat { path } => {
                if !dirs.contains(&parent(path)) || dirs.contains(path) {
                    return false;
                }
                files.insert(path.clone());
            }
            PfsCall::Mkdir { path } => {
                if !dirs.contains(&parent(path)) || dirs.contains(path) || files.contains(path) {
                    return false;
                }
                dirs.insert(path.clone());
            }
            PfsCall::Pwrite { path, .. } | PfsCall::Fsync { path } | PfsCall::Close { path } => {
                if !files.contains(path) {
                    return false;
                }
            }
            PfsCall::Rename { src, dst } => {
                if files.remove(src) {
                    if !dirs.contains(&parent(dst)) || dirs.contains(dst) {
                        return false;
                    }
                    files.insert(dst.clone());
                } else if dirs.remove(src) {
                    if !dirs.contains(&parent(dst)) || files.contains(dst) {
                        return false;
                    }
                    // Rewrite children.
                    let moved: Vec<String> = dirs
                        .iter()
                        .chain(files.iter())
                        .filter(|p| p.starts_with(&format!("{src}/")))
                        .cloned()
                        .collect();
                    for m in moved {
                        let new = format!("{dst}{}", &m[src.len()..]);
                        if dirs.remove(&m) {
                            dirs.insert(new);
                        } else if files.remove(&m) {
                            files.insert(new);
                        }
                    }
                    dirs.insert(dst.clone());
                } else {
                    return false;
                }
            }
            PfsCall::Unlink { path } => {
                if !files.remove(path) {
                    return false;
                }
            }
            PfsCall::Rmdir { path } => {
                if !dirs.remove(path) {
                    return false;
                }
            }
        }
    }
    true
}

/// Replay the preamble plus a preserved subset of test calls on a fresh
/// stack and return the resulting client view. `None` when the subset is
/// not executable (no legal state arises from it).
pub fn replay_pfs(
    factory: &StackFactory,
    pre: &[(Process, PfsCall)],
    subset: &[(Process, PfsCall)],
) -> Option<PfsView> {
    let all: Vec<(Process, PfsCall)> = pre.iter().chain(subset.iter()).cloned().collect();
    if !executable(&all) {
        return None;
    }
    let mut pfs = factory();
    let mut rec = Recorder::new();
    for (client, call) in &all {
        // A model may reject a subset `executable` admits (its own
        // namespace bookkeeping is stricter); that subset denotes no
        // legal state either.
        pfs.dispatch(&mut rec, *client, call, None).ok()?;
    }
    Some(pfs.client_view(pfs.live()))
}

/// Replay the preamble plus a preserved subset of I/O-library calls on a
/// fresh stack and return the logical H5 state. `None` when the subset
/// is not executable or the result fails `h5check` (a legal state is by
/// definition a clean execution).
pub fn replay_h5(
    factory: &StackFactory,
    path: &str,
    ranks: &[u32],
    pre: &[(u32, H5Call)],
    subset: &[(u32, H5Call)],
    spec: h5sim::H5Spec,
) -> Option<h5sim::H5Logical> {
    let all: Vec<(u32, H5Call)> = pre.iter().chain(subset.iter()).cloned().collect();
    let mut pfs = factory();
    h5sim::h5replay_with(pfs.as_mut(), path, ranks, &all, spec).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfs::beegfs::BeeGfs;

    fn factory() -> StackFactory {
        Box::new(|| Box::new(BeeGfs::paper_default()))
    }

    #[test]
    fn stack_records_and_seals() {
        let mut stack = Stack::new(factory()());
        stack.posix(
            0,
            PfsCall::Creat {
                path: "/file".into(),
            },
        );
        stack.posix(
            0,
            PfsCall::Pwrite {
                path: "/file".into(),
                offset: 0,
                data: b"old".to_vec(),
            },
        );
        stack.seal_preamble();
        assert_eq!(stack.pre_calls.len(), 2);
        assert!(stack.calls.is_empty());
        assert!(stack.rec.is_empty());
        stack.posix(
            0,
            PfsCall::Creat {
                path: "/tmp".into(),
            },
        );
        assert_eq!(stack.calls.len(), 1);
        assert!(!stack.rec.is_empty());
    }

    #[test]
    fn replay_full_subset_matches_live() {
        let mut stack = Stack::new(factory()());
        stack.posix(
            0,
            PfsCall::Creat {
                path: "/file".into(),
            },
        );
        stack.seal_preamble();
        stack.posix(
            0,
            PfsCall::Creat {
                path: "/tmp".into(),
            },
        );
        stack.posix(
            0,
            PfsCall::Rename {
                src: "/tmp".into(),
                dst: "/file".into(),
            },
        );
        let f = factory();
        let subset: Vec<(Process, PfsCall)> = stack
            .calls
            .entries()
            .iter()
            .map(|(_, p, c)| (*p, c.clone()))
            .collect();
        let view = replay_pfs(&f, &stack.pre_calls, &subset).expect("executable");
        assert_eq!(view, stack.pfs.client_view(stack.pfs.live()));
    }

    #[test]
    fn invalid_subsets_are_rejected() {
        let f = factory();
        // Rename without the create.
        let subset = vec![(
            Process::Client(0),
            PfsCall::Rename {
                src: "/tmp".into(),
                dst: "/file".into(),
            },
        )];
        assert!(replay_pfs(&f, &[], &subset).is_none());
        // Write without the create.
        let subset = vec![(
            Process::Client(0),
            PfsCall::Pwrite {
                path: "/x".into(),
                offset: 0,
                data: vec![1],
            },
        )];
        assert!(replay_pfs(&f, &[], &subset).is_none());
    }

    #[test]
    fn executable_tracks_directory_renames() {
        let calls = vec![
            (Process::Client(0), PfsCall::Mkdir { path: "/A".into() }),
            (
                Process::Client(0),
                PfsCall::Rename {
                    src: "/A".into(),
                    dst: "/B".into(),
                },
            ),
            (
                Process::Client(0),
                PfsCall::Creat {
                    path: "/B/foo".into(),
                },
            ),
        ];
        assert!(executable(&calls));
        let bad = vec![
            (Process::Client(0), PfsCall::Mkdir { path: "/A".into() }),
            (
                Process::Client(0),
                PfsCall::Creat {
                    path: "/B/foo".into(),
                },
            ),
        ];
        assert!(!executable(&bad));
    }
}
