//! The cross-layer consistency checker (Figure 6).
//!
//! For every crash state: materialize it on snapshots of the servers,
//! run the PFS recovery tool and remount, then check **top-down**:
//!
//! 1. If the program uses the I/O library, check the recovered HDF5 /
//!    NetCDF state against the legal golden states of the I/O-library
//!    layer (preserved sets of H5 calls, replayed with `h5replay` on a
//!    fresh stack; `h5clear` is given a chance to repair first).
//! 2. If the I/O-library state is inconsistent, check the PFS layer the
//!    same way (preserved sets of PFS client calls). A valid PFS state
//!    under an invalid I/O-library state attributes the bug to the I/O
//!    library; an invalid PFS state attributes it to the PFS.
//! 3. Classify (Table 1), aggregate duplicates (§5.2), optionally learn
//!    the pattern for pruning (§5.3).

use crate::classify::{classify, BugSignature};
use crate::config::CheckConfig;
use crate::emulate::crash_states;
use crate::explore::{
    is_data_chunk, server_fingerprints, tsp_order, CostModel, ExploreStats, Pruner, ReplayCache,
};
use crate::model::Model;
use crate::persist::PersistAnalysis;
use crate::report::op_detail;
use crate::snapshot::{naive_batch, naive_snapshots, prepare_states, SnapshotPlan};
use crate::stack::{replay_h5, replay_pfs, Stack, StackFactory};
use h5sim::{check as h5check, check_lenient, h5clear, H5Logical};
use pfs::{recover_and_mount, PfsCall, PfsView};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use tracer::{BitSet, CausalityGraph, EventId, Layer, Process, Recorder};

/// Which layer a bug is attributed to (Figure 6's final verdict).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LayerVerdict {
    /// The PFS state was legal but the I/O-library state was not.
    IoLibBug,
    /// The PFS state itself violated its crash-consistency model.
    PfsBug,
}

/// One aggregated crash-consistency bug.
#[derive(Debug, Clone)]
pub struct Inconsistency {
    /// Root-cause signature (reordering pair / atomic group).
    pub signature: BugSignature,
    /// Responsible layer.
    pub layer: LayerVerdict,
    /// The weakest crash-consistency model the state violates at the
    /// inconsistent layer (baseline violations are the severe ones).
    pub violated_model: Model,
    /// Concrete operations of one witness state (Table 3's "Details").
    pub witness: Vec<String>,
    /// How many distinct crash states expose this cause.
    pub occurrences: usize,
}

/// The result of checking one test program on one stack.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    /// PFS under test.
    pub pfs_name: String,
    /// Aggregated unique bugs.
    pub bugs: Vec<Inconsistency>,
    /// Inconsistent crash states before aggregation (Figure 8 bars).
    pub raw_inconsistent_states: usize,
    /// States where the I/O library was inconsistent while the PFS was
    /// consistent (Figure 8 line series).
    pub h5_bad_pfs_ok_states: usize,
    /// Exploration accounting (Figures 10 / 11).
    pub stats: ExploreStats,
    /// Crash states whose check itself failed (a panicking recovery
    /// tool, a poisoned replay): one human-readable line each. The run
    /// completes; these states are excluded from the verdict counts.
    pub diagnostics: Vec<String>,
    /// Provenance bundles, one per bug, in signature order — filled
    /// only when `cfg.explain` (or `PC_TRACE=summary`) is set.
    /// Presentation-plane output: never part of
    /// [`CheckOutcome::canonical_report`], so explain on/off runs stay
    /// byte-identical there.
    pub explanations: Vec<crate::explain::BugExplanation>,
    /// Digests of the distinct *representative* pre-recovery crash
    /// states (sorted, deduplicated) — the Pathfinder-style state
    /// identities the campaign corpus dedups on. Filled only when
    /// `cfg.collect_rep_digests` is set; engine-invariant (prefix-tree
    /// and `PC_NAIVE_SNAPSHOTS=1` agree). Like `explanations`, never
    /// part of [`CheckOutcome::canonical_report`].
    pub rep_digests: Vec<u64>,
}

impl CheckOutcome {
    /// Bugs attributed to the I/O library.
    pub fn iolib_bugs(&self) -> usize {
        self.bugs
            .iter()
            .filter(|b| b.layer == LayerVerdict::IoLibBug)
            .count()
    }

    /// Bugs attributed to the PFS.
    pub fn pfs_bugs(&self) -> usize {
        self.bugs
            .iter()
            .filter(|b| b.layer == LayerVerdict::PfsBug)
            .count()
    }

    /// Deterministic rendering of everything the checker *decided* —
    /// bugs, state counts, diagnostics — excluding wall-clock timing
    /// and cache traffic. Two runs with the same trace and the same
    /// fault seed must produce byte-identical canonical reports, on any
    /// `PC_THREADS` setting: this is the string the chaos suite
    /// compares.
    pub fn canonical_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "pfs = {}", self.pfs_name);
        let _ = writeln!(
            out,
            "states total/checked/pruned/diagnostic = {}/{}/{}/{}",
            self.stats.states_total,
            self.stats.states_checked,
            self.stats.states_pruned,
            self.stats.states_diagnostic,
        );
        let _ = writeln!(
            out,
            "raw inconsistent = {} (h5-bad-pfs-ok {})",
            self.raw_inconsistent_states, self.h5_bad_pfs_ok_states,
        );
        let mut bugs: Vec<String> = self
            .bugs
            .iter()
            .map(|b| {
                format!(
                    "bug {} [{:?}] violates {} x{} witness={:?}",
                    b.signature,
                    b.layer,
                    b.violated_model.as_str(),
                    b.occurrences,
                    b.witness,
                )
            })
            .collect();
        bugs.sort();
        for b in bugs {
            let _ = writeln!(out, "{b}");
        }
        for d in &self.diagnostics {
            let _ = writeln!(out, "diagnostic: {d}");
        }
        out
    }
}

/// Walk caller links to the nearest *call* ancestor at `layer` (RPC
/// send/recv events are recorded at the same layers but belong to their
/// issuing call).
fn ancestor_at(rec: &Recorder, e: EventId, layer: Layer) -> Option<EventId> {
    let mut cur = Some(e);
    while let Some(id) = cur {
        let ev = rec.event(id);
        if ev.layer == layer && matches!(ev.payload, tracer::Payload::Call { .. }) {
            return Some(id);
        }
        cur = ev.parent;
    }
    None
}

/// Map each lowermost event in `cut` to its layer-level call, falling
/// back to the latest call that happens-before it.
fn layer_candidates(
    rec: &Recorder,
    graph: &CausalityGraph,
    layer: Layer,
    layer_ops: &[EventId],
    cut: &BitSet,
) -> Vec<EventId> {
    let mut out: BTreeSet<EventId> = BTreeSet::new();
    for e in cut.iter() {
        if !rec.event(e).layer.is_lowermost() {
            continue;
        }
        if let Some(a) = ancestor_at(rec, e, layer) {
            if layer_ops.contains(&a) {
                out.insert(a);
                continue;
            }
        }
        if let Some(&a) = layer_ops.iter().rfind(|&&op| graph.happens_before(op, e)) {
            out.insert(a);
        }
    }
    out.into_iter().collect()
}

/// PFS-layer ops committed by an `fsync` call inside the candidate set.
fn pfs_committed(
    rec: &Recorder,
    graph: &CausalityGraph,
    stack: &Stack,
    candidates: &[EventId],
) -> Vec<EventId> {
    let mut out = Vec::new();
    for &(ev, _, ref call) in stack.calls.entries() {
        if !candidates.contains(&ev) {
            continue;
        }
        for &(fev, _, ref fcall) in stack.calls.entries() {
            if let PfsCall::Fsync { path } = fcall {
                if candidates.contains(&fev)
                    && path == call.primary_path()
                    && graph.happens_before(ev, fev)
                {
                    out.push(ev);
                    break;
                }
            }
        }
    }
    let _ = rec;
    out
}

/// Shared legal golden states for one cut: `(PFS views, H5 logicals)`.
type LegalStates = (Arc<Vec<PfsView>>, Arc<Vec<H5Logical>>);

/// Run the full ParaCrash check for one traced program.
pub fn check_stack(stack: &Stack, factory: &StackFactory, cfg: &CheckConfig) -> CheckOutcome {
    let started = Instant::now();
    let check_span = pc_rt::obs::span_cat("check_stack", "check");
    let tl_mark = pc_rt::obs::mark();
    let rec = &stack.rec;
    let stage = pc_rt::obs::span_cat("check.analyze", "check");
    let graph = CausalityGraph::build(rec);
    let pa = PersistAnalysis::build(rec, &graph, |s| stack.journal_of(s));
    drop(stage);
    let topo = stack.pfs.topology().clone();
    let n_servers = topo.server_count();

    // Semantic victim pruning (§5.3) only in the pruning modes, only for
    // I/O-library programs (the object map comes from h5inspect).
    let semantic = cfg.mode.prunes() && stack.h5_path.is_some();
    let filter = |e: EventId| !(semantic && is_data_chunk(rec, e));
    let stage = pc_rt::obs::span_cat("check.enumerate", "check");
    let states = crash_states(rec, &graph, &pa, cfg.k, Some(&filter));
    drop(stage);
    pc_rt::obs::count("check.crash_states", states.len() as u64);

    // Checking order: minimal-damage states first, so classification
    // sees the single-fault witnesses before the compound ones and the
    // §5.2 aggregation can absorb the latter. (Reconstruction *cost* is
    // charged separately below, over the mode's own visiting order.)
    let mut order: Vec<usize> = (0..states.len()).collect();
    order.sort_by_key(|&i| {
        let s = &states[i];
        (s.victims.len(), std::cmp::Reverse(s.cut.count()))
    });

    // Baseline (pre-crash) I/O-library state, for the baseline model's
    // unmodified-dataset rule.
    let baseline_h5: Option<H5Logical> = stack.h5_path.as_ref().and_then(|p| {
        let view = stack.pfs.client_view(stack.pfs.baseline());
        view.read(p).and_then(|b| h5check(b).ok())
    });
    let modified_keys = modified_dataset_keys(stack);

    let pfs_ops = stack.calls.event_ids();
    let h5_ops = stack.h5.event_ids();

    let mut stats = ExploreStats {
        states_total: states.len(),
        ..Default::default()
    };
    let mut pruner = Pruner::new();
    // Legal-state sets are shared, not cloned, across states: the heavy
    // HDF5 cells hold multi-megabyte views and hundreds of crash states.
    let mut pfs_cache: ReplayCache<Arc<Vec<PfsView>>> = ReplayCache::with_cap(cfg.replay_cache_cap);
    let mut h5_cache: ReplayCache<Arc<Vec<H5Logical>>> =
        ReplayCache::with_cap(cfg.replay_cache_cap);
    let mut bugs: BTreeMap<(BugSignature, LayerVerdict), Inconsistency> = BTreeMap::new();
    // Index of each bug's first (witness) crash state, for the explain
    // pass; side table rather than an `Inconsistency` field so the
    // canonical report stays exactly what the checker decided.
    let mut witness_state: BTreeMap<(BugSignature, LayerVerdict), usize> = BTreeMap::new();
    let mut raw_inconsistent = 0usize;
    let mut h5_bad_pfs_ok = 0usize;
    let mut checked_indices: Vec<usize> = Vec::new();

    // Legal golden states per distinct candidate set, filled up front so
    // the verdict pass can run data-parallel (states are independent:
    // each materializes its own snapshot).
    let evaluate = |state: &crate::emulate::CrashState,
                    pfs_cache: &mut ReplayCache<Arc<Vec<PfsView>>>,
                    h5_cache: &mut ReplayCache<Arc<Vec<H5Logical>>>|
     -> LegalStates {
        let pfs_candidates = layer_candidates(rec, &graph, Layer::PfsClient, &pfs_ops, &state.cut);
        let committed = pfs_committed(rec, &graph, stack, &pfs_candidates);
        let legal_views = pfs_cache.get_or(pfs_candidates.clone(), || {
            Arc::new(legal_pfs_views(
                stack,
                factory,
                cfg.pfs_model,
                &graph,
                &pfs_candidates,
                &committed,
            ))
        });
        let legal_h5 = if stack.h5_path.is_some() {
            let h5_candidates = layer_candidates(rec, &graph, Layer::IoLib, &h5_ops, &state.cut);
            h5_cache.get_or(h5_candidates.clone(), || {
                Arc::new(legal_h5_logicals(
                    stack,
                    factory,
                    cfg.h5_model,
                    &graph,
                    &h5_candidates,
                ))
            })
        } else {
            Arc::new(Vec::new())
        };
        (legal_views, legal_h5)
    };

    // Crash-state materialization engine. The default (COW) engine
    // pre-materializes every state as an O(1) fork off a shared prefix
    // tree of persisted-event sequences; the `PC_NAIVE_SNAPSHOTS=1`
    // oracle instead deep-clones the baseline and replays each state's
    // full prefix, reproducing the historical clone-everything engine.
    // Both apply the exact same events in the exact same order, so the
    // materialized states — and every verdict derived from them — are
    // bit-identical (asserted by `tests/snapshot_equivalence.rs`).
    let stage = pc_rt::obs::span_cat("check.materialize", "check");
    let plan: Option<SnapshotPlan> = if naive_snapshots() {
        None
    } else {
        Some(prepare_states(rec, stack.pfs.baseline(), &states))
    };
    drop(stage);

    // Representative-state identities for the campaign corpus: one
    // digest per distinct storage-event sequence, of the materialized
    // (pre-recovery, pre-widening) snapshot. The prefix-tree engine
    // reads them straight off its terminals (`rep[i] == i`); the naive
    // oracle materializes each distinct sequence once — identical
    // digests by the same equivalence argument as the snapshots
    // themselves.
    let rep_digests: Vec<u64> = if cfg.collect_rep_digests {
        let _stage = pc_rt::obs::span_cat("check.rep_digests", "check");
        let mut digests: Vec<u64> = match &plan {
            Some(plan) => plan
                .rep
                .iter()
                .enumerate()
                .filter(|&(i, &rep)| rep == i)
                .map(|(i, _)| plan.prepared[i].digest())
                .collect(),
            None => {
                let mut seen: std::collections::BTreeSet<Vec<tracer::EventId>> =
                    std::collections::BTreeSet::new();
                let mut digests = Vec::new();
                for state in &states {
                    let seq = crate::snapshot::storage_seq(rec, state);
                    if seen.insert(seq.clone()) {
                        let mut st = stack.pfs.baseline().deep_clone();
                        st.apply_events(rec, seq);
                        digests.push(st.digest());
                    }
                }
                digests
            }
        };
        digests.sort_unstable();
        digests.dedup();
        pc_rt::obs::count("check.rep_digests", digests.len() as u64);
        digests
    } else {
        Vec::new()
    };

    // The per-state verdict, shared by the sequential and parallel paths.
    // Torn-write widening (when `cfg.faults.torn_writes`) draws from an
    // RNG seeded by (fault seed, state index) so the same crash state
    // tears the same way on every run and thread count.
    let torn = cfg.faults.torn_writes;
    let torn_rng = |i: usize| -> pc_rt::rng::Rng {
        pc_rt::rng::Rng::new(
            cfg.faults
                .seed
                .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    };
    // Subtree-batched recovery: crash states whose storage-event
    // sequences land on the same prefix-tree terminal have *identical*
    // prepared snapshots, so recovery and mounting — the dominant
    // per-state cost — runs once per representative and the recovered
    // view is shared. A state stays on the per-state path when fault
    // widening can make its on-disk image unique (torn writes with live
    // victims), when the naive snapshot engine is active (no plan), or
    // under the `PC_NAIVE_BATCH=1` oracle. Recovery is deterministic on
    // the store state, so both paths produce bit-identical views
    // (asserted by `tests/snapshot_equivalence.rs`).
    let per_state_recovery = naive_batch();
    let shared_views: Vec<OnceLock<PfsView>> = (0..states.len()).map(|_| OnceLock::new()).collect();
    let verdict_of = |i: usize,
                      legal_views: &[PfsView],
                      legal_h5: &[H5Logical]|
     -> (bool, Option<(LayerVerdict, Model)>) {
        let state = &states[i];
        let owned: PfsView;
        let view: &PfsView = match &plan {
            Some(plan) if !per_state_recovery && (!torn || state.victims.is_empty()) => {
                let rep = plan.rep[i];
                if rep != i {
                    pc_rt::obs::count("check.views_shared", 1);
                }
                shared_views[rep].get_or_init(|| {
                    let mut st = plan.prepared[rep].fork();
                    let (_, view) = recover_and_mount(stack.pfs.as_ref(), &mut st);
                    view
                })
            }
            _ => {
                let mut st = match &plan {
                    Some(plan) => plan.prepared[i].fork(),
                    None => {
                        let mut st = stack.pfs.baseline().deep_clone();
                        st.apply_events(rec, state.persisted.iter());
                        st
                    }
                };
                if torn {
                    st.apply_torn_victims(rec, state.victims.iter().copied(), &mut torn_rng(i));
                }
                let (_, view) = recover_and_mount(stack.pfs.as_ref(), &mut st);
                owned = view;
                &owned
            }
        };
        let pfs_ok = legal_views.contains(view);
        let verdict = if let Some(path) = &stack.h5_path {
            h5_verdict(
                cfg,
                path,
                view,
                legal_h5,
                baseline_h5.as_ref(),
                &modified_keys,
            )
            .map(|violated| {
                if pfs_ok {
                    (LayerVerdict::IoLibBug, violated)
                } else {
                    (LayerVerdict::PfsBug, violated)
                }
            })
        } else if pfs_ok {
            None
        } else {
            Some((LayerVerdict::PfsBug, cfg.pfs_model))
        };
        (pfs_ok, verdict)
    };

    // Legal-state replays and per-state verdicts are *pipelined*: the
    // sequential producer (it owns the `&mut` replay caches) walks the
    // checking order, fills each state's legal-state slot, and
    // immediately spawns that state's verdict task on the work-stealing
    // scope — verdict workers run concurrently with the producer
    // instead of waiting behind a stage barrier. Results are joined by
    // state index, so the output is byte-identical to the old
    // two-stage fan-out on every `PC_THREADS` setting (1 = spawn runs
    // inline: the deterministic sequential reference).
    // Both the golden-state replays and the per-state verdicts run under
    // catch_unwind: a panicking model or recovery tool poisons only its
    // own crash state, which the prune pass below turns into a
    // diagnostic entry instead of aborting the run.
    let legal_of: Vec<OnceLock<Result<LegalStates, String>>> =
        (0..states.len()).map(|_| OnceLock::new()).collect();
    let stage_legal = pc_rt::obs::span_cat("check.legal_states", "check");
    let stage_verdicts = pc_rt::obs::span_cat("check.verdicts", "check");
    let computed: Vec<Result<(bool, Option<(LayerVerdict, Model)>), String>> =
        pc_rt::pool::scope(|scope| {
            let mut handles = Vec::with_capacity(order.len());
            for &idx in &order {
                let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    evaluate(&states[idx], &mut pfs_cache, &mut h5_cache)
                }))
                .map_err(|p| pc_rt::pool::panic_message(p.as_ref()));
                let _ = legal_of[idx].set(got);
                let legal_of = &legal_of;
                let verdict_of = &verdict_of;
                handles.push((
                    idx,
                    scope.spawn(move || {
                        match legal_of[idx].get().expect("producer fills before spawn") {
                            Ok((legal_views, legal_h5)) => verdict_of(idx, legal_views, legal_h5),
                            // Funnel replay failures through the same caught path.
                            Err(e) => panic!("legal-state replay failed: {e}"),
                        }
                    }),
                ));
            }
            let mut out: Vec<Option<Result<_, String>>> = (0..states.len()).map(|_| None).collect();
            for (idx, handle) in handles {
                out[idx] = Some(handle.join());
            }
            out.into_iter()
                .map(|r| r.expect("order is a permutation of all states"))
                .collect()
        });
    drop(stage_verdicts);
    drop(stage_legal);
    let stage = pc_rt::obs::span_cat("check.prune", "check");
    let mut diagnostics: Vec<String> = Vec::new();
    for &idx in &order {
        let state = &states[idx];
        if cfg.mode.prunes() && pruner_skips(&pruner, rec, &topo, &pa, state) {
            stats.states_pruned += 1;
            continue;
        }
        stats.states_checked += 1;
        checked_indices.push(idx);
        let v = match &computed[idx] {
            Ok(v) => *v,
            Err(msg) => {
                stats.states_diagnostic += 1;
                pc_rt::obs::count("recover.diagnostic", 1);
                diagnostics.push(format!("crash state {idx}: {msg}"));
                if cfg.fail_fast {
                    break;
                }
                continue;
            }
        };
        if let (_, Some((layer, violated_model))) = v {
            raw_inconsistent += 1;
            if layer == LayerVerdict::IoLibBug {
                h5_bad_pfs_ok += 1;
            }
            let (legal_views, legal_h5) = match legal_of[idx].get().expect("prefilled") {
                Ok(ls) => ls,
                Err(_) => unreachable!("verdict computed implies legal states exist"),
            };
            // The classifier's flip oracle re-runs recovery on probe
            // states; a panic there poisons only this state.
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                aggregate_or_classify(
                    stack,
                    rec,
                    &topo,
                    &pa,
                    cfg,
                    state,
                    idx,
                    layer,
                    violated_model,
                    legal_views,
                    legal_h5,
                    baseline_h5.as_ref(),
                    &modified_keys,
                    &mut bugs,
                    &mut witness_state,
                    &mut pruner,
                    cfg.mode.prunes(),
                )
            }));
            if let Err(p) = caught {
                stats.states_diagnostic += 1;
                pc_rt::obs::count("recover.diagnostic", 1);
                diagnostics.push(format!(
                    "crash state {idx}: classification failed: {}",
                    pc_rt::pool::panic_message(p.as_ref())
                ));
            }
            if cfg.fail_fast {
                break;
            }
        }
    }
    drop(stage);

    // Reconstruction cost over the mode's visiting order: the optimized
    // mode rebuilds incrementally along a greedy-TSP route; the others
    // restart per state.
    let stage = pc_rt::obs::span_cat("check.cost_model", "check");
    let fingerprints: Vec<Vec<u64>> = states
        .iter()
        .map(|s| server_fingerprints(rec, n_servers, s))
        .collect();
    let cost = CostModel::for_restart(stack.pfs.restart_cost_secs());
    let visit: Vec<usize> = if cfg.mode.incremental() {
        let checked_fps: Vec<Vec<u64>> = checked_indices
            .iter()
            .map(|&i| fingerprints[i].clone())
            .collect();
        tsp_order(&checked_fps)
            .into_iter()
            .map(|j| checked_indices[j])
            .collect()
    } else {
        checked_indices.clone()
    };
    let mut prev_fp: Option<&[u64]> = None;
    for &idx in &visit {
        let (secs, rebuilds) = cost.state_cost(
            cfg.mode.incremental(),
            prev_fp,
            &fingerprints[idx],
            states[idx].persisted.count(),
        );
        stats.sim_seconds += secs;
        stats.server_rebuilds += rebuilds;
        prev_fp = Some(&fingerprints[idx]);
    }
    drop(stage);

    // Provenance pass: build an explain bundle per aggregated bug. Runs
    // after aggregation so bundles carry final occurrence counts. The
    // pass is presentation-plane: a panic inside it is a warning, never
    // a diagnostic, so canonical_report() is identical with explain on
    // or off.
    let mut explanations: Vec<crate::explain::BugExplanation> = Vec::new();
    if (cfg.explain || pc_rt::obs::summary_enabled()) && !bugs.is_empty() {
        let stage = pc_rt::obs::span_cat("check.explain", "check");
        for ((sig, layer), bug) in bugs.iter() {
            let Some(&widx) = witness_state.get(&(sig.clone(), *layer)) else {
                continue;
            };
            let Some(Ok((legal_views, legal_h5))) = legal_of[widx].get() else {
                continue;
            };
            let ctx = crate::explain::ExplainCtx {
                stack,
                graph: &graph,
                pa: &pa,
                topo: &topo,
                cfg,
                legal_views: legal_views.as_slice(),
                legal_h5: legal_h5.as_slice(),
                baseline_h5: baseline_h5.as_ref(),
                modified_keys: &modified_keys,
            };
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::explain::explain_bug(&ctx, bug, &states[widx], widx)
            }));
            match caught {
                Ok(e) => explanations.push(e),
                Err(p) => pc_rt::pc_warn!(
                    "explain failed for {sig}: {}",
                    pc_rt::pool::panic_message(p.as_ref())
                ),
            }
        }
        pc_rt::obs::count("explain.bugs", explanations.len() as u64);
        drop(stage);
    }

    stats.pfs_cache = pfs_cache.stats();
    stats.h5_cache = h5_cache.stats();
    stats.legal_replays = stats.pfs_cache.misses + stats.h5_cache.misses;
    stats.wall_seconds = started.elapsed().as_secs_f64();
    pc_rt::obs::count("cache.pfs.hits", stats.pfs_cache.hits as u64);
    pc_rt::obs::count("cache.pfs.misses", stats.pfs_cache.misses as u64);
    pc_rt::obs::count("cache.pfs.evictions", stats.pfs_cache.evictions as u64);
    pc_rt::obs::count("cache.h5.hits", stats.h5_cache.hits as u64);
    pc_rt::obs::count("cache.h5.misses", stats.h5_cache.misses as u64);
    pc_rt::obs::count("cache.h5.evictions", stats.h5_cache.evictions as u64);
    pc_rt::obs::count("check.states_checked", stats.states_checked as u64);
    pc_rt::obs::count("check.states_pruned", stats.states_pruned as u64);
    drop(check_span);
    if pc_rt::obs::stream::enabled() {
        pc_rt::obs::stream::emit(
            pc_rt::obs::stream::EventKind::Snapshot,
            "check_stack",
            stats.states_checked as u64,
            &format!(
                "pfs={} states={} inconsistent={} bugs={}",
                stack.pfs.name(),
                stats.states_checked,
                raw_inconsistent,
                bugs.len(),
            ),
        );
    }
    if pc_rt::obs::summary_enabled() {
        eprintln!(
            "{}",
            pc_rt::obs::render_summary(&tl_mark, &format!("check_stack/{}", stack.pfs.name()))
        );
        for e in &explanations {
            eprintln!("  pinpoint: {}", e.pinpoint());
        }
    }
    CheckOutcome {
        pfs_name: stack.pfs.name().to_string(),
        bugs: bugs.into_values().collect(),
        raw_inconsistent_states: raw_inconsistent,
        h5_bad_pfs_ok_states: h5_bad_pfs_ok,
        stats,
        diagnostics,
        explanations,
        rep_digests,
    }
}

/// §5.3 exploration pruning test (extracted for readability).
fn pruner_skips(
    pruner: &Pruner,
    rec: &Recorder,
    topo: &simnet::ClusterTopology,
    pa: &PersistAnalysis,
    state: &crate::emulate::CrashState,
) -> bool {
    pruner.redundant(rec, topo, pa, state)
}

/// §5.2 aggregation + Table 1 classification for one inconsistent state:
/// count it against an already-reported cause if its damage pattern
/// matches, otherwise classify it and (in the pruning modes) teach the
/// exploration pruner the new pattern.
#[allow(clippy::too_many_arguments)] // orchestration seam, intentionally explicit
fn aggregate_or_classify(
    stack: &Stack,
    rec: &Recorder,
    topo: &simnet::ClusterTopology,
    pa: &PersistAnalysis,
    cfg: &CheckConfig,
    state: &crate::emulate::CrashState,
    state_index: usize,
    layer: LayerVerdict,
    violated_model: Model,
    legal_views: &[PfsView],
    legal_h5: &[H5Logical],
    baseline_h5: Option<&H5Logical>,
    modified_keys: &BTreeSet<String>,
    bugs: &mut BTreeMap<(BugSignature, LayerVerdict), Inconsistency>,
    witness_state: &mut BTreeMap<(BugSignature, LayerVerdict), usize>,
    pruner: &mut Pruner,
    learn: bool,
) {
    let mut reported = Pruner::new();
    for (sig, _) in bugs.keys() {
        reported.learn(sig);
    }
    if reported.redundant(rec, topo, pa, state) {
        for ((sig, _), bug) in bugs.iter_mut() {
            let mut single = Pruner::new();
            single.learn(sig);
            if single.redundant(rec, topo, pa, state) {
                bug.occurrences += 1;
                break;
            }
        }
        return;
    }
    let mut oracle = |persisted: &BitSet| -> bool {
        let v = recovered_view(stack, persisted);
        if let Some(path) = &stack.h5_path {
            h5_verdict(cfg, path, &v, legal_h5, baseline_h5, modified_keys).is_none()
        } else {
            legal_views.contains(&v)
        }
    };
    let signature = {
        let _s = pc_rt::obs::span_cat("check.classify", "check");
        classify(rec, topo, pa, state, &mut oracle)
    };
    if learn {
        pruner.learn(&signature);
    }
    bugs.entry((signature.clone(), layer))
        .and_modify(|b| b.occurrences += 1)
        .or_insert_with(|| {
            witness_state.insert((signature.clone(), layer), state_index);
            // Witness ops in event-id (trace) order — the order they
            // were issued — not lexicographic string order. Built only
            // for the first state that exposes the bug.
            let mut witness_events: Vec<EventId> = state.unpersisted(pa);
            witness_events.extend(state.victims.iter().copied());
            witness_events.sort_unstable();
            witness_events.dedup();
            let witness: Vec<String> = witness_events
                .iter()
                .map(|&e| op_detail(rec, topo, e))
                .collect();
            Inconsistency {
                signature,
                layer,
                violated_model,
                witness,
                occurrences: 1,
            }
        });
}

/// Materialize a persisted set on a COW fork of the baseline snapshot,
/// recover, mount. Used by the classifier's flip oracle, whose probe
/// sets are not prefix-structured — both engines share this path, which
/// keeps their verdicts identical by construction.
fn recovered_view(stack: &Stack, persisted: &BitSet) -> PfsView {
    let mut states = stack.pfs.baseline().fork();
    states.apply_events(&stack.rec, persisted.iter());
    let (_, view) = recover_and_mount(stack.pfs.as_ref(), &mut states);
    view
}

/// All legal PFS views for a candidate op set under `model`.
fn legal_pfs_views(
    stack: &Stack,
    factory: &StackFactory,
    model: Model,
    graph: &CausalityGraph,
    candidates: &[EventId],
    committed: &[EventId],
) -> Vec<PfsView> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for set in model.preserved_sets(graph, candidates, committed) {
        let subset: Vec<(Process, PfsCall)> = stack.calls.subset(&set);
        if let Some(view) = replay_pfs(factory, &stack.pre_calls, &subset) {
            if seen.insert(view.digest()) {
                out.push(view);
            }
        }
    }
    out
}

/// All legal I/O-library logical states for a candidate op set.
fn legal_h5_logicals(
    stack: &Stack,
    factory: &StackFactory,
    model: Model,
    graph: &CausalityGraph,
    candidates: &[EventId],
) -> Vec<H5Logical> {
    let path = stack.h5_path.as_deref().expect("h5 program");
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    // The baseline model's golden comparison is dataset-granular rather
    // than whole-state, but its legal *full* states still come from the
    // causal sets (a weaker model only adds legal states — handled in
    // `h5_verdict`).
    let enum_model = if model == Model::Baseline {
        Model::Causal
    } else {
        model
    };
    for set in enum_model.preserved_sets(graph, candidates, &[]) {
        let subset: Vec<(u32, h5sim::H5Call)> = stack.h5.subset(&set);
        if let Some(logical) = replay_h5(
            factory,
            path,
            &stack.h5_ranks,
            &stack.pre_h5,
            &subset,
            stack.h5_spec,
        ) {
            if seen.insert(logical.digest()) {
                out.push(logical);
            }
        }
    }
    out
}

/// Dataset keys the test program modifies.
fn modified_dataset_keys(stack: &Stack) -> BTreeSet<String> {
    use h5sim::H5Call;
    let mut keys = BTreeSet::new();
    for (_, _, call) in stack.h5.entries() {
        match call {
            H5Call::CreateDataset { group, name, .. }
            | H5Call::CreateDatasetParallel { group, name, .. }
            | H5Call::ResizeDataset { group, name, .. }
            | H5Call::ResizeDatasetParallel { group, name, .. }
            | H5Call::DeleteDataset { group, name } => {
                keys.insert(h5sim::format::dataset_key(group, name));
            }
            H5Call::RenameDataset {
                src_group,
                src_name,
                dst_group,
                dst_name,
            } => {
                keys.insert(h5sim::format::dataset_key(src_group, src_name));
                keys.insert(h5sim::format::dataset_key(dst_group, dst_name));
            }
            _ => {}
        }
    }
    keys
}

/// I/O-library-layer verdict for one recovered view: `None` if
/// consistent under `cfg.h5_model`, otherwise the weakest violated model
/// (baseline < causal).
pub(crate) fn h5_verdict(
    cfg: &CheckConfig,
    path: &str,
    view: &PfsView,
    legal: &[H5Logical],
    baseline: Option<&H5Logical>,
    modified: &BTreeSet<String>,
) -> Option<Model> {
    let Some(bytes) = view.read(path) else {
        // The file itself is gone or unreadable through the PFS.
        return Some(Model::Baseline);
    };
    // h5check; on failure let h5clear try to repair (§4.4.3).
    let strict = match h5check(bytes) {
        Ok(l) => Some(l),
        Err(_) => {
            let cleared = h5clear(bytes, cfg.clear_opts);
            h5check(&cleared).ok()
        }
    };
    // Fast path: a state that parses cleanly and matches a causal golden
    // state is consistent under every model — no need for the
    // dataset-granular baseline walk (most crash states are legal).
    if strict.as_ref().is_some_and(|l| legal.contains(l)) {
        return None;
    }
    // Baseline: every dataset that was closed before the crash (i.e. not
    // modified by the test program) must still be readable and intact.
    let violates_baseline = {
        let cleared = h5clear(bytes, cfg.clear_opts);
        let lenient = {
            let first = check_lenient(bytes);
            if first.open_error.is_some()
                || first.datasets.values().any(|d| d.is_err())
                || !first.group_errors.is_empty()
            {
                check_lenient(&cleared)
            } else {
                first
            }
        };
        if lenient.open_error.is_some() {
            true
        } else if let Some(base) = baseline {
            base.datasets.iter().any(|(key, expected)| {
                if modified.contains(key) {
                    return false;
                }
                !matches!(lenient.datasets.get(key), Some(Ok(v)) if v == expected)
            })
        } else {
            false
        }
    };
    let violates_causal = violates_baseline || strict.map(|l| !legal.contains(&l)).unwrap_or(true);

    let violated = match cfg.h5_model {
        Model::Baseline => violates_baseline,
        _ => violates_causal,
    };
    if !violated {
        None
    } else if violates_baseline {
        Some(Model::Baseline)
    } else {
        Some(Model::Causal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreMode;
    use pfs::beegfs::BeeGfs;
    use pfs::ext4::Ext4Direct;

    fn beegfs_factory() -> StackFactory {
        Box::new(|| Box::new(BeeGfs::paper_default()))
    }

    fn ext4_factory() -> StackFactory {
        Box::new(|| Box::new(Ext4Direct::paper_default()))
    }

    fn run_arvr(factory: &StackFactory) -> Stack {
        let mut stack = Stack::new(factory());
        stack.posix(
            0,
            PfsCall::Creat {
                path: "/file".into(),
            },
        );
        stack.posix(
            0,
            PfsCall::Pwrite {
                path: "/file".into(),
                offset: 0,
                data: b"old".to_vec(),
            },
        );
        stack.posix(
            0,
            PfsCall::Close {
                path: "/file".into(),
            },
        );
        stack.seal_preamble();
        stack.posix(
            0,
            PfsCall::Creat {
                path: "/tmp".into(),
            },
        );
        stack.posix(
            0,
            PfsCall::Pwrite {
                path: "/tmp".into(),
                offset: 0,
                data: b"new".to_vec(),
            },
        );
        stack.posix(
            0,
            PfsCall::Close {
                path: "/tmp".into(),
            },
        );
        stack.posix(
            0,
            PfsCall::Rename {
                src: "/tmp".into(),
                dst: "/file".into(),
            },
        );
        stack
    }

    #[test]
    fn arvr_on_beegfs_finds_bugs() {
        let factory = beegfs_factory();
        let stack = run_arvr(&factory);
        let cfg = CheckConfig {
            mode: ExploreMode::BruteForce,
            ..CheckConfig::paper_default()
        };
        let outcome = check_stack(&stack, &factory, &cfg);
        assert!(outcome.raw_inconsistent_states > 0, "{outcome:?}");
        assert!(!outcome.bugs.is_empty());
        assert!(outcome.pfs_bugs() > 0);
        assert_eq!(outcome.h5_bad_pfs_ok_states, 0);
        // Bug 1's shape must be among the signatures: the storage-side
        // append reordered after metadata-side rename work.
        let sigs: Vec<String> = outcome
            .bugs
            .iter()
            .map(|b| b.signature.to_string())
            .collect();
        assert!(
            sigs.iter()
                .any(|s| s.contains("append(file chunk)@storage")),
            "signatures: {sigs:?}"
        );
    }

    #[test]
    fn arvr_on_ext4_is_clean() {
        let factory = ext4_factory();
        let stack = run_arvr(&factory);
        let cfg = CheckConfig {
            mode: ExploreMode::BruteForce,
            ..CheckConfig::paper_default()
        };
        let outcome = check_stack(&stack, &factory, &cfg);
        assert_eq!(outcome.raw_inconsistent_states, 0, "{:?}", outcome.bugs);
        assert!(outcome.bugs.is_empty());
    }

    #[test]
    fn pruning_finds_the_same_bugs_faster() {
        let factory = beegfs_factory();
        let stack = run_arvr(&factory);
        let brute = check_stack(
            &stack,
            &factory,
            &CheckConfig {
                mode: ExploreMode::BruteForce,
                ..CheckConfig::paper_default()
            },
        );
        let pruned = check_stack(
            &stack,
            &factory,
            &CheckConfig {
                mode: ExploreMode::Pruning,
                ..CheckConfig::paper_default()
            },
        );
        let optimized = check_stack(
            &stack,
            &factory,
            &CheckConfig {
                mode: ExploreMode::Optimized,
                ..CheckConfig::paper_default()
            },
        );
        let sigs = |o: &CheckOutcome| -> BTreeSet<String> {
            o.bugs.iter().map(|b| b.signature.to_string()).collect()
        };
        // §5.3 / §6.4: pruning does not reduce the bugs discovered.
        assert_eq!(sigs(&brute), sigs(&pruned));
        assert_eq!(sigs(&brute), sigs(&optimized));
        assert!(pruned.stats.states_checked < brute.stats.states_checked);
        assert!(optimized.stats.sim_seconds < brute.stats.sim_seconds);
    }
}
