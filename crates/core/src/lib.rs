#![warn(missing_docs)]

//! # paracrash — the cross-layer crash-consistency testing framework
//!
//! This crate is the reproduction of the paper's contribution proper:
//! given a traced run of a test program over the simulated HPC I/O stack
//! (`h5sim` → `mpiio` → `pfs` → `simfs`), it
//!
//! 1. builds the end-to-end causality graph (via the `tracer` crate) and
//!    the **persists-before** relation (Algorithm 2) over the
//!    lowermost-level operations ([`persist`]);
//! 2. enumerates **crash states** — consistent cuts plus up-to-`k`
//!    dropped victims with their persistence-dependency closures
//!    (Algorithm 1, [`emulate`]);
//! 3. materializes each crash state on snapshots of the server stores,
//!    runs the stack's recovery tools, and compares the recovered state
//!    against **legal golden states** generated from the preserved sets
//!    allowed by each layer's crash-consistency model ([`model`],
//!    [`check`]);
//! 4. attributes each inconsistency to the responsible layer —
//!    I/O library vs parallel file system (Figure 6) — classifies it as
//!    a reordering or atomicity violation (Table 1, [`classify`]), and
//!    aggregates duplicates (§5.2);
//! 5. optionally prunes and reorders the exploration (§5.3: known-bad
//!    pattern pruning, semantic object-map pruning, incremental state
//!    reconstruction with a greedy TSP visiting order, [`explore`]);
//! 6. optionally builds a provenance bundle per reproduced bug — a
//!    delta-debugged minimal witness, a causal-graph export with vector
//!    clocks and violated persists-before edges, and a tree-structured
//!    state diff ([`explain`]);
//! 7. optionally *generates* workloads instead of replaying the paper's
//!    eleven: B3-style bounded black-box enumeration with a seeded
//!    sampling mode and a deduplicating findings corpus ([`fuzz`]) —
//!    the vocabularies live in `workloads::generated`, the campaign
//!    driver and `paracrash fuzz` CLI in `pc-bench`.

pub mod check;
pub mod classify;
pub mod config;
pub mod dashboard;
pub mod emulate;
pub mod explain;
pub mod explore;
pub mod fuzz;
pub mod history;
pub mod model;
pub mod persist;
pub mod report;
pub mod snapshot;
pub mod stack;
pub mod telemetry;

pub use check::{check_stack, CheckOutcome, Inconsistency, LayerVerdict};
pub use classify::{BugKind, BugSignature};
pub use config::CheckConfig;
pub use emulate::{crash_states, CrashState};
pub use explain::{BugExplanation, EdgeKind, ReplayEngine};
pub use explore::{ExploreMode, ExploreStats};
pub use fuzz::{bounded_sequences, sample_indices, FuzzCorpus, FuzzFinding};
pub use model::Model;
pub use persist::PersistAnalysis;
pub use snapshot::{naive_snapshots, prepare_states, SnapshotPlan, SnapshotStats};
pub use stack::{Stack, StackFactory};
