//! Telemetry serialization: `pc_rt::obs` snapshots as machine-readable
//! JSON, in two dialects.
//!
//! * [`telemetry_json`] — a plain structured dump (`spans`, `counters`,
//!   `gauges`, `histograms`), same `h5sim::json` writer and style as the
//!   `BENCH_*.json` files `pc-bench --json` commits;
//! * [`chrome_trace`] — the Chrome trace-event format (the JSON Array
//!   Format with `traceEvents`), loadable in Perfetto / `chrome://tracing`
//!   for a flamegraph-style timeline of a full bug-finding run. Every
//!   span becomes a complete (`"ph": "X"`) event; counters, gauges and
//!   histogram summaries ride along under `otherData`.
//!
//! Both serialize with the vendored writer and round-trip through
//! [`Json::parse`] — the `telemetry-check` gate in `scripts/verify.sh`
//! relies on that. Both carry a top-level `schema_version`
//! ([`pc_rt::obs::stream::SCHEMA_VERSION`], shared with the events
//! stream); `telemetry-check` rejects any other version instead of
//! silently re-parsing an incompatible dump.
//!
//! [`canonical_event_lines`] is the third consumer-side piece: it
//! projects a `--events-out` JSON-lines stream onto its deterministic
//! fields (kind/name/detail of `finding` and `cell` events, sorted) so
//! sequential and parallel campaign runs can be diffed byte-for-byte.

use h5sim::json::Json;
use pc_rt::obs::stream::SCHEMA_VERSION;
use pc_rt::obs::TelemetrySnapshot;

/// Serialize a snapshot as plain structured JSON (`BENCH_*.json` style).
pub fn telemetry_json(snap: &TelemetrySnapshot) -> Json {
    let spans = snap
        .spans
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("name".into(), Json::Str(s.name.into())),
                ("cat".into(), Json::Str(s.cat.into())),
                ("tid".into(), Json::Int(s.tid.into())),
                ("depth".into(), Json::Int(s.depth.into())),
                ("start_ns".into(), Json::Int(s.start_ns)),
                ("dur_ns".into(), Json::Int(s.dur_ns)),
                ("trace_id".into(), Json::Int(s.trace_id)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema_version".into(), Json::Int(SCHEMA_VERSION)),
        ("spans".into(), Json::Arr(spans)),
        ("counters".into(), named_ints(&snap.counters)),
        ("gauges".into(), named_ints(&snap.gauges)),
        ("histograms".into(), hists(snap)),
        ("dropped_spans".into(), Json::Int(snap.dropped_spans)),
        ("ops".into(), Json::Int(snap.ops)),
        ("alloc".into(), alloc_json(snap)),
    ])
}

/// The `alloc` object both dialects carry: whole-process totals plus
/// per-span attribution from the counting allocator (empty when
/// accounting never ran).
fn alloc_json(snap: &TelemetrySnapshot) -> Json {
    let stat = |s: &pc_rt::obs::AllocStat| {
        Json::Obj(vec![
            ("count".into(), Json::Int(s.count)),
            ("bytes".into(), Json::Int(s.bytes)),
            ("peak_bytes".into(), Json::Int(s.peak_bytes)),
        ])
    };
    Json::Obj(vec![
        ("total".into(), stat(&snap.alloc_total)),
        (
            "spans".into(),
            Json::Obj(
                snap.allocs
                    .iter()
                    .map(|(k, s)| (k.clone(), stat(s)))
                    .collect(),
            ),
        ),
    ])
}

/// Serialize a snapshot in Chrome trace-event format. Spans arrive
/// sorted by start time, so the emitted `ts` fields are monotonically
/// nondecreasing (asserted by `tests/telemetry.rs`). Timestamps are
/// microseconds, as the format requires; sub-microsecond precision is
/// kept in `args.start_ns` / `args.dur_ns`.
///
/// The `pid` field carries the span's causal trace id plus one (0 is
/// not a valid pid; untraced spans land in pid 1), so Perfetto groups
/// each workload cell's cross-layer flow — workload replay, checker
/// stages, `simnet` RPC deliveries on pool workers — as one process
/// lane per check.
pub fn chrome_trace(snap: &TelemetrySnapshot) -> Json {
    let events = snap
        .spans
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("name".into(), Json::Str(s.name.into())),
                (
                    "cat".into(),
                    Json::Str(if s.cat.is_empty() { "pc" } else { s.cat }.into()),
                ),
                ("ph".into(), Json::Str("X".into())),
                ("pid".into(), Json::Int(s.trace_id + 1)),
                ("tid".into(), Json::Int(s.tid.into())),
                ("ts".into(), Json::Int(s.start_ns / 1_000)),
                ("dur".into(), Json::Int(s.dur_ns.div_ceil(1_000))),
                (
                    "args".into(),
                    Json::Obj(vec![
                        ("depth".into(), Json::Int(s.depth.into())),
                        ("start_ns".into(), Json::Int(s.start_ns)),
                        ("dur_ns".into(), Json::Int(s.dur_ns)),
                        ("trace_id".into(), Json::Int(s.trace_id)),
                    ]),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema_version".into(), Json::Int(SCHEMA_VERSION)),
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        (
            "otherData".into(),
            Json::Obj(vec![
                ("counters".into(), named_ints(&snap.counters)),
                ("gauges".into(), named_ints(&snap.gauges)),
                ("histograms".into(), hists(snap)),
                ("dropped_spans".into(), Json::Int(snap.dropped_spans)),
                ("alloc".into(), alloc_json(snap)),
            ]),
        ),
    ])
}

/// Parse and validate a `--events-out` JSON-lines stream.
///
/// The first line must be the stream header carrying a known
/// `schema_version`; event lines must have the full field set with a
/// strictly increasing `seq` and a known `kind`; meta lines (the
/// trailer, the panic marker) are allowed after the header and are not
/// returned. On success, returns the event objects in stream order.
pub fn parse_event_stream(text: &str) -> Result<Vec<Json>, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty event stream")?;
    let header = Json::parse(header).map_err(|e| format!("header: {e}"))?;
    match header.get("schema_version").and_then(Json::as_int) {
        Some(v) if v == SCHEMA_VERSION => {}
        Some(v) => {
            return Err(format!(
                "unknown schema_version {v} (expected {SCHEMA_VERSION})"
            ))
        }
        None => return Err("header missing schema_version".into()),
    }
    let mut events = Vec::new();
    let mut last_seq: Option<u64> = None;
    for (i, line) in lines.enumerate() {
        let obj = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 2))?;
        if obj.get("schema_version").is_some() && obj.get("kind").is_none() {
            // Trailer / panic-marker meta line.
            continue;
        }
        let seq = obj
            .get("seq")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("line {}: missing seq", i + 2))?;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!("line {}: seq {seq} not above {prev}", i + 2));
            }
        }
        last_seq = Some(seq);
        let kind = obj
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing kind", i + 2))?;
        if pc_rt::obs::stream::EventKind::parse(kind).is_none() {
            return Err(format!("line {}: unknown kind {kind:?}", i + 2));
        }
        for key in ["ts_ns", "value", "trace_id"] {
            if obj.get(key).and_then(Json::as_int).is_none() {
                return Err(format!("line {}: missing {key}", i + 2));
            }
        }
        for key in ["name", "detail"] {
            if obj.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("line {}: missing {key}", i + 2));
            }
        }
        events.push(obj);
    }
    Ok(events)
}

/// Project an event stream onto its deterministic content for seq ≡ par
/// comparison: keep `finding` and `cell` events (whose name/detail are
/// pure functions of the campaign's deterministic fold), drop the
/// wall-clock and scheduling noise (timestamps, durations, span and
/// counter interleavings), and sort. Two campaign runs of the same
/// matrix — sequential or parallel, any `PC_THREADS` — must produce
/// identical projections; verify gate 12 diffs them.
pub fn canonical_event_lines(text: &str) -> Result<Vec<String>, String> {
    let events = parse_event_stream(text)?;
    let mut out: Vec<String> = events
        .iter()
        .filter(|e| {
            matches!(
                e.get("kind").and_then(Json::as_str),
                Some("finding") | Some("cell")
            )
        })
        .map(|e| {
            format!(
                "{} {} :: {}",
                e.get("kind").and_then(Json::as_str).unwrap_or(""),
                e.get("name").and_then(Json::as_str).unwrap_or(""),
                e.get("detail").and_then(Json::as_str).unwrap_or(""),
            )
        })
        .collect();
    out.sort();
    Ok(out)
}

fn named_ints(pairs: &[(String, u64)]) -> Json {
    Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(*v)))
            .collect(),
    )
}

fn hists(snap: &TelemetrySnapshot) -> Json {
    Json::Obj(
        snap.hists
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::Int(h.count)),
                        ("sum_ns".into(), Json::Int(h.sum_ns)),
                        ("min_ns".into(), Json::Int(h.min_ns)),
                        ("max_ns".into(), Json::Int(h.max_ns)),
                        ("mean_ns".into(), Json::Int(h.mean_ns)),
                        ("p50_ns".into(), Json::Int(h.p50_ns)),
                        ("p95_ns".into(), Json::Int(h.p95_ns)),
                        ("p99_ns".into(), Json::Int(h.p99_ns)),
                        ("p999_ns".into(), Json::Int(h.p999_ns)),
                    ]),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_rt::obs::{HistSummary, SpanRec};

    fn sample_snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            spans: vec![
                SpanRec {
                    name: "check_stack",
                    cat: "check",
                    tid: 1,
                    depth: 0,
                    start_ns: 500,
                    dur_ns: 9_000,
                    trace_id: 0,
                },
                SpanRec {
                    name: "check.enumerate",
                    cat: "check",
                    tid: 1,
                    depth: 1,
                    start_ns: 1_000,
                    dur_ns: 2_000,
                    trace_id: 0,
                },
            ],
            counters: vec![("cache.pfs.hits".into(), 12)],
            gauges: vec![("pool.workers".into(), 4)],
            hists: vec![(
                "pool.task_ns".into(),
                HistSummary {
                    count: 3,
                    sum_ns: 600,
                    min_ns: 100,
                    max_ns: 300,
                    mean_ns: 200,
                    p50_ns: 255,
                    p95_ns: 300,
                    p99_ns: 300,
                    p999_ns: 300,
                },
            )],
            dropped_spans: 0,
            ops: 7,
            allocs: vec![
                (
                    "(untracked)".into(),
                    pc_rt::obs::AllocStat {
                        count: 40,
                        bytes: 9_000,
                        peak_bytes: 5_000,
                    },
                ),
                (
                    "check.enumerate".into(),
                    pc_rt::obs::AllocStat {
                        count: 12,
                        bytes: 4_096,
                        peak_bytes: 2_048,
                    },
                ),
            ],
            alloc_total: pc_rt::obs::AllocStat {
                count: 52,
                bytes: 13_096,
                peak_bytes: 7_048,
            },
        }
    }

    #[test]
    fn plain_json_round_trips() {
        let j = telemetry_json(&sample_snapshot());
        let parsed = Json::parse(&j.pretty()).unwrap();
        assert_eq!(parsed, j);
        assert_eq!(parsed.get("spans").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("cache.pfs.hits"))
                .and_then(Json::as_int),
            Some(12)
        );
        assert_eq!(parsed.get("ops").and_then(Json::as_int), Some(7));
        assert_eq!(
            parsed
                .get("histograms")
                .and_then(|h| h.get("pool.task_ns"))
                .and_then(|h| h.get("p99_ns"))
                .and_then(Json::as_int),
            Some(300)
        );
        let alloc = parsed.get("alloc").unwrap();
        assert_eq!(
            alloc
                .get("total")
                .and_then(|t| t.get("bytes"))
                .and_then(Json::as_int),
            Some(13_096)
        );
        assert_eq!(
            alloc
                .get("spans")
                .and_then(|s| s.get("check.enumerate"))
                .and_then(|s| s.get("peak_bytes"))
                .and_then(Json::as_int),
            Some(2_048)
        );
    }

    #[test]
    fn chrome_trace_shape() {
        let j = chrome_trace(&sample_snapshot());
        let parsed = Json::parse(&j.pretty()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
            assert_eq!(e.get("pid").and_then(Json::as_int), Some(1));
            assert!(e.get("ts").and_then(Json::as_int).is_some());
            assert!(e.get("dur").and_then(Json::as_int).is_some());
        }
        // ts is microseconds and monotonic.
        assert_eq!(events[0].get("ts").and_then(Json::as_int), Some(0));
        assert_eq!(events[1].get("ts").and_then(Json::as_int), Some(1));
        // Sub-microsecond durations round *up*, so no span renders as
        // zero-width.
        assert_eq!(events[0].get("dur").and_then(Json::as_int), Some(9));
        assert_eq!(events[1].get("dur").and_then(Json::as_int), Some(2));
        assert!(parsed.get("otherData").unwrap().get("counters").is_some());
    }

    #[test]
    fn both_dialects_carry_schema_version_and_p999() {
        for j in [
            telemetry_json(&sample_snapshot()),
            chrome_trace(&sample_snapshot()),
        ] {
            assert_eq!(
                j.get("schema_version").and_then(Json::as_int),
                Some(SCHEMA_VERSION)
            );
        }
        let j = telemetry_json(&sample_snapshot());
        assert_eq!(
            j.get("histograms")
                .and_then(|h| h.get("pool.task_ns"))
                .and_then(|h| h.get("p999_ns"))
                .and_then(Json::as_int),
            Some(300)
        );
    }

    const STREAM_HEADER: &str =
        "{\"schema_version\":1,\"stream\":\"paracrash-events\",\"cap\":8192}";

    fn event_line(seq: u64, kind: &str, name: &str, detail: &str) -> String {
        format!(
            "{{\"seq\":{seq},\"ts_ns\":{},\"kind\":\"{kind}\",\"name\":\"{name}\",\"value\":7,\"detail\":\"{detail}\",\"trace_id\":3}}",
            seq * 100,
        )
    }

    #[test]
    fn event_stream_parses_and_rejects_bad_versions() {
        let good = format!(
            "{STREAM_HEADER}\n{}\n{}\n{{\"schema_version\":1,\"published\":2,\"dropped\":0}}\n",
            event_line(0, "cell", "wl@OrangeFS/ordered", "findings=0"),
            event_line(5, "finding", "BeeGFS/writeback", "sig [Pfs]"),
        );
        let events = parse_event_stream(&good).unwrap();
        assert_eq!(events.len(), 2);

        let bad_version = good.replace(
            "\"schema_version\":1,\"stream\"",
            "\"schema_version\":9,\"stream\"",
        );
        let err = parse_event_stream(&bad_version).unwrap_err();
        assert!(err.contains("schema_version 9"), "{err}");

        let no_version = "{\"stream\":\"paracrash-events\"}\n";
        assert!(parse_event_stream(no_version).is_err());

        let bad_seq = format!(
            "{STREAM_HEADER}\n{}\n{}\n",
            event_line(5, "cell", "a", ""),
            event_line(5, "cell", "b", ""),
        );
        assert!(parse_event_stream(&bad_seq).unwrap_err().contains("seq"));

        let bad_kind = format!("{STREAM_HEADER}\n{}\n", event_line(0, "mystery", "a", ""));
        assert!(parse_event_stream(&bad_kind).unwrap_err().contains("kind"));
    }

    #[test]
    fn canonical_projection_is_order_and_noise_invariant() {
        let a = format!(
            "{STREAM_HEADER}\n{}\n{}\n{}\n",
            event_line(0, "span_close", "check.verdicts", "check"),
            event_line(1, "cell", "wl@OrangeFS/ordered", "findings=0"),
            event_line(2, "finding", "BeeGFS/writeback", "sig [Pfs]"),
        );
        // Same deterministic content: different seqs, timestamps,
        // ordering, and span/counter noise.
        let b = format!(
            "{STREAM_HEADER}\n{}\n{}\n{}\n",
            event_line(10, "finding", "BeeGFS/writeback", "sig [Pfs]"),
            event_line(90, "counter", "rpc.messages", ""),
            event_line(800, "cell", "wl@OrangeFS/ordered", "findings=0"),
        );
        assert_eq!(
            canonical_event_lines(&a).unwrap(),
            canonical_event_lines(&b).unwrap()
        );
        assert_eq!(canonical_event_lines(&a).unwrap().len(), 2);
    }
}
