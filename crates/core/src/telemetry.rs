//! Telemetry serialization: `pc_rt::obs` snapshots as machine-readable
//! JSON, in two dialects.
//!
//! * [`telemetry_json`] — a plain structured dump (`spans`, `counters`,
//!   `gauges`, `histograms`), same `h5sim::json` writer and style as the
//!   `BENCH_*.json` files `pc-bench --json` commits;
//! * [`chrome_trace`] — the Chrome trace-event format (the JSON Array
//!   Format with `traceEvents`), loadable in Perfetto / `chrome://tracing`
//!   for a flamegraph-style timeline of a full bug-finding run. Every
//!   span becomes a complete (`"ph": "X"`) event; counters, gauges and
//!   histogram summaries ride along under `otherData`.
//!
//! Both serialize with the vendored writer and round-trip through
//! [`Json::parse`] — the `telemetry-check` gate in `scripts/verify.sh`
//! relies on that.

use h5sim::json::Json;
use pc_rt::obs::TelemetrySnapshot;

/// Serialize a snapshot as plain structured JSON (`BENCH_*.json` style).
pub fn telemetry_json(snap: &TelemetrySnapshot) -> Json {
    let spans = snap
        .spans
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("name".into(), Json::Str(s.name.into())),
                ("cat".into(), Json::Str(s.cat.into())),
                ("tid".into(), Json::Int(s.tid.into())),
                ("depth".into(), Json::Int(s.depth.into())),
                ("start_ns".into(), Json::Int(s.start_ns)),
                ("dur_ns".into(), Json::Int(s.dur_ns)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("spans".into(), Json::Arr(spans)),
        ("counters".into(), named_ints(&snap.counters)),
        ("gauges".into(), named_ints(&snap.gauges)),
        ("histograms".into(), hists(snap)),
        ("dropped_spans".into(), Json::Int(snap.dropped_spans)),
        ("ops".into(), Json::Int(snap.ops)),
    ])
}

/// Serialize a snapshot in Chrome trace-event format. Spans arrive
/// sorted by start time, so the emitted `ts` fields are monotonically
/// nondecreasing (asserted by `tests/telemetry.rs`). Timestamps are
/// microseconds, as the format requires; sub-microsecond precision is
/// kept in `args.start_ns` / `args.dur_ns`.
pub fn chrome_trace(snap: &TelemetrySnapshot) -> Json {
    let events = snap
        .spans
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("name".into(), Json::Str(s.name.into())),
                (
                    "cat".into(),
                    Json::Str(if s.cat.is_empty() { "pc" } else { s.cat }.into()),
                ),
                ("ph".into(), Json::Str("X".into())),
                ("pid".into(), Json::Int(1)),
                ("tid".into(), Json::Int(s.tid.into())),
                ("ts".into(), Json::Int(s.start_ns / 1_000)),
                ("dur".into(), Json::Int(s.dur_ns.div_ceil(1_000))),
                (
                    "args".into(),
                    Json::Obj(vec![
                        ("depth".into(), Json::Int(s.depth.into())),
                        ("start_ns".into(), Json::Int(s.start_ns)),
                        ("dur_ns".into(), Json::Int(s.dur_ns)),
                    ]),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        (
            "otherData".into(),
            Json::Obj(vec![
                ("counters".into(), named_ints(&snap.counters)),
                ("gauges".into(), named_ints(&snap.gauges)),
                ("histograms".into(), hists(snap)),
                ("dropped_spans".into(), Json::Int(snap.dropped_spans)),
            ]),
        ),
    ])
}

fn named_ints(pairs: &[(String, u64)]) -> Json {
    Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(*v)))
            .collect(),
    )
}

fn hists(snap: &TelemetrySnapshot) -> Json {
    Json::Obj(
        snap.hists
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::Int(h.count)),
                        ("sum_ns".into(), Json::Int(h.sum_ns)),
                        ("min_ns".into(), Json::Int(h.min_ns)),
                        ("max_ns".into(), Json::Int(h.max_ns)),
                        ("mean_ns".into(), Json::Int(h.mean_ns)),
                        ("p50_ns".into(), Json::Int(h.p50_ns)),
                        ("p95_ns".into(), Json::Int(h.p95_ns)),
                        ("p99_ns".into(), Json::Int(h.p99_ns)),
                    ]),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_rt::obs::{HistSummary, SpanRec};

    fn sample_snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            spans: vec![
                SpanRec {
                    name: "check_stack",
                    cat: "check",
                    tid: 1,
                    depth: 0,
                    start_ns: 500,
                    dur_ns: 9_000,
                },
                SpanRec {
                    name: "check.enumerate",
                    cat: "check",
                    tid: 1,
                    depth: 1,
                    start_ns: 1_000,
                    dur_ns: 2_000,
                },
            ],
            counters: vec![("cache.pfs.hits".into(), 12)],
            gauges: vec![("pool.workers".into(), 4)],
            hists: vec![(
                "pool.task_ns".into(),
                HistSummary {
                    count: 3,
                    sum_ns: 600,
                    min_ns: 100,
                    max_ns: 300,
                    mean_ns: 200,
                    p50_ns: 255,
                    p95_ns: 300,
                    p99_ns: 300,
                },
            )],
            dropped_spans: 0,
            ops: 7,
        }
    }

    #[test]
    fn plain_json_round_trips() {
        let j = telemetry_json(&sample_snapshot());
        let parsed = Json::parse(&j.pretty()).unwrap();
        assert_eq!(parsed, j);
        assert_eq!(parsed.get("spans").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("cache.pfs.hits"))
                .and_then(Json::as_int),
            Some(12)
        );
        assert_eq!(parsed.get("ops").and_then(Json::as_int), Some(7));
        assert_eq!(
            parsed
                .get("histograms")
                .and_then(|h| h.get("pool.task_ns"))
                .and_then(|h| h.get("p99_ns"))
                .and_then(Json::as_int),
            Some(300)
        );
    }

    #[test]
    fn chrome_trace_shape() {
        let j = chrome_trace(&sample_snapshot());
        let parsed = Json::parse(&j.pretty()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
            assert_eq!(e.get("pid").and_then(Json::as_int), Some(1));
            assert!(e.get("ts").and_then(Json::as_int).is_some());
            assert!(e.get("dur").and_then(Json::as_int).is_some());
        }
        // ts is microseconds and monotonic.
        assert_eq!(events[0].get("ts").and_then(Json::as_int), Some(0));
        assert_eq!(events[1].get("ts").and_then(Json::as_int), Some(1));
        // Sub-microsecond durations round *up*, so no span renders as
        // zero-width.
        assert_eq!(events[0].get("dur").and_then(Json::as_int), Some(9));
        assert_eq!(events[1].get("dur").and_then(Json::as_int), Some(2));
        assert!(parsed.get("otherData").unwrap().get("counters").is_some());
    }
}
