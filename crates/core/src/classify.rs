//! Bug classification (Table 1) and aggregation (§5.2).
//!
//! Once a crash state is found inconsistent, ParaCrash pins down *why*
//! by re-testing hypothetical states: for a candidate pair `(A, B)` with
//! `A` unpersisted and `B` persisted in the failing state, it constructs
//! the four persist/not-persist combinations and checks each:
//!
//! * only `(¬A, B)` fails → **reordering**: `A` should persist before
//!   `B` (Table 1a);
//! * `(¬A, B)` and `(A, ¬B)` fail, the all/none states pass →
//!   **atomicity**: `A` must persist together with `B` (Table 1b);
//! * no pair explains the state → a **multi-operation atomicity**
//!   violation over the partially-persisted operation group (§5.2:
//!   "ParaCrash also checks atomicity issues for more than two
//!   operations").
//!
//! The candidate universe is the crash state's cut *plus* the remaining
//! lowermost operations of calls that were only partially persisted —
//! so a crash that truncated a call mid-flush (e.g. HDF5's delete
//! flushing the B-tree and heap but not the symbol-table node) is
//! explained by the not-yet-issued operation, exactly as the paper's
//! Table 3 rows phrase it.

use crate::emulate::CrashState;
use crate::persist::PersistAnalysis;
use crate::report;
use simfs::FsOp;
use simnet::ClusterTopology;
use std::collections::BTreeSet;
use std::fmt;
use tracer::{BitSet, EventId, Payload, Recorder};

/// Reordering vs atomicity (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugKind {
    /// `A → B`: A should be persisted before B.
    Reordering,
    /// `[A, B, …]`: the members must persist atomically.
    Atomicity,
}

/// Aggregation key of one root cause.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BugSignature {
    /// Violation kind.
    pub kind: BugKind,
    /// Normalized operation signatures: `[first, second]` for a
    /// reordering (first should persist first), the sorted member set
    /// for an atomicity violation.
    pub members: Vec<String>,
}

impl fmt::Display for BugSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            BugKind::Reordering => write!(f, "{} -> {}", self.members[0], self.members[1]),
            BugKind::Atomicity => write!(f, "[{}]", self.members.join(", ")),
        }
    }
}

/// The layer-call an event belongs to, for grouping flushes of one
/// operation: nearest I/O-library ancestor if the program has one,
/// else the nearest PFS-client call.
fn call_of(rec: &Recorder, e: EventId) -> Option<EventId> {
    let mut pfs_call = None;
    let mut cur = Some(e);
    while let Some(id) = cur {
        let ev = rec.event(id);
        // Only actual calls count — RPC send/recv events are recorded at
        // the client/server layers too but belong to their issuing call.
        if matches!(ev.payload, Payload::Call { .. }) {
            match ev.layer {
                tracer::Layer::IoLib => return Some(id),
                tracer::Layer::PfsClient if pfs_call.is_none() => pfs_call = Some(id),
                _ => {}
            }
        }
        cur = ev.parent;
    }
    pfs_call
}

/// The extended probe universe for one crash state: cut updates plus the
/// remaining updates of calls that are only partially inside the cut —
/// so a crash that truncated a call mid-flush is explained by the
/// not-yet-issued operation. Shared by [`classify`] and the provenance
/// engine (`crate::explain`), which must shrink witnesses over exactly
/// the universe the classifier probed.
pub(crate) fn extended_universe(
    rec: &Recorder,
    pa: &PersistAnalysis,
    state: &CrashState,
) -> BitSet {
    let mut universe = BitSet::new(state.cut.capacity());
    let in_cut_calls: BTreeSet<EventId> = pa
        .updates()
        .iter()
        .copied()
        .filter(|&u| state.cut.contains(u))
        .filter_map(|u| call_of(rec, u))
        .collect();
    for &u in pa.updates() {
        if state.cut.contains(u) || call_of(rec, u).is_some_and(|c| in_cut_calls.contains(&c)) {
            universe.insert(u);
        }
    }
    universe
}

/// Classify one inconsistent crash state.
///
/// `consistent` evaluates a hypothetical persisted set through the full
/// recover-and-compare pipeline; it is the expensive oracle, so
/// combinations are probed lazily.
pub fn classify(
    rec: &Recorder,
    topo: &ClusterTopology,
    pa: &PersistAnalysis,
    state: &CrashState,
    consistent: &mut dyn FnMut(&BitSet) -> bool,
) -> BugSignature {
    let universe = extended_universe(rec, pa, state);

    let drop = |victims: &[EventId]| -> BitSet {
        let mut p = universe.clone();
        for &v in victims {
            p.subtract(&pa.depends_on(v, &universe));
        }
        p
    };
    let unpersisted: Vec<EventId> = pa
        .updates()
        .iter()
        .copied()
        .filter(|&u| universe.contains(u) && !state.persisted.contains(u))
        .collect();
    let persisted: Vec<EventId> = pa
        .updates()
        .iter()
        .copied()
        .filter(|&u| state.persisted.contains(u))
        .collect();

    let sig = |e: EventId| report::op_sig(rec, topo, e);
    // Attribute-update events are auxiliary; they never anchor a pair.
    let meaningful = |e: EventId| {
        !matches!(
            &rec.event(e).payload,
            Payload::Fs {
                op: FsOp::SetXattr { .. },
                ..
            }
        )
    };
    // The complete execution of every involved call must be consistent
    // for the pairwise analysis to be meaningful.
    if consistent(&universe) {
        // Scan A from the causally-latest unpersisted op backwards (the
        // op closest to the damage) and B from the latest persisted op
        // backwards: the tightest pair gives the canonical signature.
        for &a in unpersisted.iter().rev() {
            for &b in persisted.iter().rev() {
                if pa.persists_before(a, b) || sig(a) == sig(b) || !meaningful(b) {
                    continue;
                }
                let s_a0_b1 = drop(&[a]);
                if !s_a0_b1.contains(b) || consistent(&s_a0_b1) {
                    continue;
                }
                let s_a1_b0 = drop(&[b]);
                let s_a0_b0 = drop(&[a, b]);
                let ok_10 = consistent(&s_a1_b0);
                let ok_00 = consistent(&s_a0_b0);
                if ok_10 && ok_00 {
                    return BugSignature {
                        kind: BugKind::Reordering,
                        members: vec![sig(a), sig(b)],
                    };
                }
                if !ok_10 && ok_00 {
                    let mut members = vec![sig(a), sig(b)];
                    members.sort();
                    members.dedup();
                    return BugSignature {
                        kind: BugKind::Atomicity,
                        members,
                    };
                }
            }
        }
    }

    // No clean pairwise pattern. If a victim belongs to a journal atomic
    // group (kernel-level PFS), the violation is that group's atomicity
    // (Table 3 bug 3).
    for &v in &unpersisted {
        if let Payload::Block { op, .. } = &rec.event(v).payload {
            if let Some(g) = op.atomic_group() {
                let mut members: Vec<String> = universe
                    .iter()
                    .filter(|&u| {
                        matches!(&rec.event(u).payload,
                            Payload::Block { op, .. } if op.atomic_group() == Some(g))
                    })
                    .map(sig)
                    .collect();
                members.sort();
                members.dedup();
                return BugSignature {
                    kind: BugKind::Atomicity,
                    members,
                };
            }
        }
    }

    // Reordering fallback: the causally-latest unpersisted op against
    // the first meaningful persisted op after it (attribute updates are
    // auxiliary and aggregated with their triggering operation).
    if let Some(&a) = unpersisted.last() {
        let partner = persisted
            .iter()
            .copied()
            .find(|&b| b > a && meaningful(b) && sig(b) != sig(a))
            .or_else(|| {
                persisted
                    .iter()
                    .copied()
                    .find(|&b| b > a && sig(b) != sig(a))
            });
        if let Some(b) = partner {
            return BugSignature {
                kind: BugKind::Reordering,
                members: vec![sig(a), sig(b)],
            };
        }
        // Nothing persisted after the victim: the victim's call group is
        // partially persisted.
        let mut members: Vec<String> = unpersisted.iter().map(|&e| sig(e)).collect();
        members.sort();
        members.dedup();
        return BugSignature {
            kind: BugKind::Atomicity,
            members,
        };
    }

    // Pure cut truncation with no pairwise pattern: report the
    // partially-persisted call's structure set as an atomic group
    // (HDF5 rename, Table 3 bug 12).
    let partial_call = pa
        .updates()
        .iter()
        .copied()
        .filter(|&u| universe.contains(u) && !state.cut.contains(u))
        .filter_map(|u| call_of(rec, u))
        .next();
    let mut members: Vec<String> = match partial_call {
        Some(c) => pa
            .updates()
            .iter()
            .copied()
            .filter(|&u| universe.contains(u) && call_of(rec, u) == Some(c))
            .map(sig)
            .collect(),
        None => persisted.iter().map(|&e| sig(e)).collect(),
    };
    members.sort();
    members.dedup();
    BugSignature {
        kind: BugKind::Atomicity,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::JournalMode;
    use tracer::{CausalityGraph, Layer, Process};

    /// Synthetic two-op trace: storage append then metadata rename,
    /// chained through client calls.
    fn two_ops() -> (Recorder, EventId, EventId) {
        let mut rec = Recorder::new();
        let c = rec.record(
            Layer::PfsClient,
            Process::Client(0),
            Payload::Call {
                name: "op".into(),
                args: vec![],
            },
            None,
        );
        let a = rec.record(
            Layer::LocalFs,
            Process::Server(2),
            Payload::Fs {
                server: 2,
                op: FsOp::Append {
                    path: "/chunks/f0.0".into(),
                    data: vec![1],
                },
            },
            Some(c),
        );
        let c2 = rec.record(
            Layer::PfsClient,
            Process::Client(0),
            Payload::Call {
                name: "op2".into(),
                args: vec![],
            },
            None,
        );
        rec.add_edge(a, c2);
        let b = rec.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: FsOp::Rename {
                    src: "/dentries/root/tmp".into(),
                    dst: "/dentries/root/file".into(),
                },
            },
            Some(c2),
        );
        (rec, a, b)
    }

    fn state_for(rec: &Recorder, _pa: &PersistAnalysis, persisted: &[EventId]) -> CrashState {
        let all: Vec<EventId> = rec.lowermost_events();
        CrashState {
            cut: BitSet::from_iter(rec.len(), all.clone()),
            victims: all
                .iter()
                .copied()
                .filter(|e| !persisted.contains(e))
                .collect(),
            persisted: BitSet::from_iter(rec.len(), persisted.iter().copied()),
        }
    }

    #[test]
    fn reordering_pattern_detected() {
        let (rec, a, b) = two_ops();
        let topo = ClusterTopology::dedicated(2, 2, 1);
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Data));
        // Oracle: the state is broken exactly when b persisted without a
        // (the bug-1 shape: rename without the append).
        #[allow(clippy::nonminimal_bool)] // "not (b without a)" reads as intended
        let mut oracle = |p: &BitSet| !(p.contains(b) && !p.contains(a));
        let state = state_for(&rec, &pa, &[b]);
        let sig = classify(&rec, &topo, &pa, &state, &mut oracle);
        assert_eq!(sig.kind, BugKind::Reordering);
        assert_eq!(sig.members[0], "append(file chunk)@storage");
        assert_eq!(sig.members[1], "rename(d_entry)@metadata");
        assert_eq!(
            sig.to_string(),
            "append(file chunk)@storage -> rename(d_entry)@metadata"
        );
    }

    #[test]
    fn atomicity_pattern_detected() {
        let (rec, a, b) = two_ops();
        let topo = ClusterTopology::dedicated(2, 2, 1);
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Data));
        // Oracle: broken whenever exactly one of {a, b} persisted.
        let mut oracle = |p: &BitSet| p.contains(a) == p.contains(b);
        let state = state_for(&rec, &pa, &[b]);
        let sig = classify(&rec, &topo, &pa, &state, &mut oracle);
        assert_eq!(sig.kind, BugKind::Atomicity);
        assert_eq!(sig.members.len(), 2);
        assert!(sig.to_string().starts_with('['));
    }

    #[test]
    fn cut_truncation_uses_extended_universe() {
        // One call with two flushes on one server; the cut stops after
        // the first. The extended universe pulls the second flush in, so
        // the pair (missing-second, persisted-first) can classify.
        let mut rec = Recorder::new();
        let call = rec.record(
            Layer::IoLib,
            Process::Client(0),
            Payload::Call {
                name: "H5Ldelete".into(),
                args: vec![],
            },
            None,
        );
        let first = rec.record_labeled(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: FsOp::Pwrite {
                    path: "/x".into(),
                    offset: 0,
                    data: vec![1],
                },
            },
            Some(call),
            "local heap of g1",
        );
        let second = rec.record_labeled(
            Layer::LocalFs,
            Process::Server(1),
            Payload::Fs {
                server: 1,
                op: FsOp::Pwrite {
                    path: "/y".into(),
                    offset: 0,
                    data: vec![2],
                },
            },
            Some(call),
            "symbol table node of g1",
        );
        let topo = ClusterTopology::combined(2, 1);
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Data));
        let state = CrashState {
            cut: BitSet::from_iter(rec.len(), [first]),
            victims: vec![],
            persisted: BitSet::from_iter(rec.len(), [first]),
        };
        // Broken whenever the heap write persisted without the symbol
        // table write.
        #[allow(clippy::nonminimal_bool)] // "not (first without second)" reads as intended
        let mut oracle = |p: &BitSet| !(p.contains(first) && !p.contains(second));
        let sig = classify(&rec, &topo, &pa, &state, &mut oracle);
        assert_eq!(sig.kind, BugKind::Reordering);
        assert_eq!(sig.members[0], "write(symbol table node)");
        assert_eq!(sig.members[1], "write(local heap)");
    }

    #[test]
    fn signatures_aggregate_equal_causes() {
        let s1 = BugSignature {
            kind: BugKind::Reordering,
            members: vec!["x".into(), "y".into()],
        };
        let s2 = BugSignature {
            kind: BugKind::Reordering,
            members: vec!["x".into(), "y".into()],
        };
        let s3 = BugSignature {
            kind: BugKind::Atomicity,
            members: vec!["x".into(), "y".into()],
        };
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        let set: std::collections::BTreeSet<_> = [s1, s2, s3].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
