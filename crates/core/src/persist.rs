//! Algorithm 2 — the *persists-before* partial order.
//!
//! Two lowermost-level storage updates may execute in one order yet reach
//! persistent storage in another; `persists_before(a, b)` holds exactly
//! when the storage guarantees `a` is durable no later than `b`:
//!
//! * **same local file system** — decided by its journaling mode
//!   (delegated to `simfs::journal`, the paper's `data` / `ordered` /
//!   `writeback` branches);
//! * **same block device** — only a cache-flush barrier between them
//!   orders them;
//! * **any pair (including cross-server)** — a commit operation between
//!   them: an `fsync`/`fdatasync` of `a`'s file (or a device-wide
//!   `syncfs` / `scsi_synchronize_cache` on `a`'s device) that happens
//!   after `a` and before `b` makes `a` durable first (the `else`
//!   branch of Algorithm 2).
//!
//! The full matrix is memoized (the paper decorates the function with
//! `@lru_cache`); traces are small so we precompute it densely.

use simfs::{journal, BlockOp, FsOp, JournalMode};
use tracer::{BitSet, CausalityGraph, EventId, Payload, Recorder};

/// Which server and operation family a lowermost event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpSite {
    Fs(u32),
    Block(u32),
}

/// Precomputed persists-before relation over a trace.
pub struct PersistAnalysis {
    /// Lowermost *update* events (the replayable ops of Algorithm 1).
    updates: Vec<EventId>,
    /// Lowermost sync events.
    syncs: Vec<EventId>,
    /// Dense relation rows: `before[i]` = set of update events that
    /// event `updates[i]` persists before.
    before: Vec<BitSet>,
    n_events: usize,
}

impl PersistAnalysis {
    /// Build the relation for a trace, given each server's journaling
    /// mode (taken from the PFS's store configuration).
    pub fn build(
        rec: &Recorder,
        graph: &CausalityGraph,
        journal_of: impl Fn(u32) -> Option<JournalMode>,
    ) -> Self {
        let updates: Vec<EventId> = rec
            .events()
            .iter()
            .filter(|e| e.payload.is_storage_update())
            .map(|e| e.id)
            .collect();
        let syncs: Vec<EventId> = rec
            .events()
            .iter()
            .filter(|e| e.payload.is_storage_sync())
            .map(|e| e.id)
            .collect();
        let n = rec.len();
        let mut before: Vec<BitSet> = updates.iter().map(|_| BitSet::new(n)).collect();
        for (i, &a) in updates.iter().enumerate() {
            for &b in &updates {
                if a == b {
                    continue;
                }
                if Self::pb(rec, graph, &syncs, &journal_of, a, b) {
                    before[i].insert(b);
                }
            }
        }
        PersistAnalysis {
            updates,
            syncs,
            before,
            n_events: n,
        }
    }

    fn site(rec: &Recorder, e: EventId) -> OpSite {
        match &rec.event(e).payload {
            Payload::Fs { server, .. } => OpSite::Fs(*server),
            Payload::Block { server, .. } => OpSite::Block(*server),
            _ => unreachable!("persistence analysis only sees storage events"),
        }
    }

    fn fs_op(rec: &Recorder, e: EventId) -> Option<&FsOp> {
        match &rec.event(e).payload {
            Payload::Fs { op, .. } => Some(op),
            _ => None,
        }
    }

    /// Does a commit event `s` commit update `a`? An `fsync`/`fdatasync`
    /// commits prior updates touching the same file on the same server;
    /// `syncfs` / `scsi_synchronize_cache` commit every prior update on
    /// their server.
    fn commits(rec: &Recorder, a: EventId, s: EventId) -> bool {
        match (&rec.event(a).payload, &rec.event(s).payload) {
            (
                Payload::Fs { server: sa, op },
                Payload::Fs {
                    server: ss,
                    op: sync,
                },
            ) => {
                sa == ss
                    && match sync {
                        FsOp::SyncFs => true,
                        FsOp::Fsync { path } | FsOp::Fdatasync { path } => {
                            op.paths().contains(&path.as_str())
                        }
                        _ => false,
                    }
            }
            (Payload::Block { server: sa, .. }, Payload::Block { server: ss, op }) => {
                sa == ss && matches!(op, BlockOp::SyncCache)
            }
            _ => false,
        }
    }

    fn pb(
        rec: &Recorder,
        graph: &CausalityGraph,
        syncs: &[EventId],
        journal_of: &impl Fn(u32) -> Option<JournalMode>,
        a: EventId,
        b: EventId,
    ) -> bool {
        // Commit rule (works across servers): a → sync(a) → b.
        let committed = syncs.iter().any(|&s| {
            Self::commits(rec, a, s) && graph.happens_before(a, s) && graph.happens_before(s, b)
        });
        if committed {
            return true;
        }
        // Same-site rules.
        match (Self::site(rec, a), Self::site(rec, b)) {
            (OpSite::Fs(sa), OpSite::Fs(sb)) if sa == sb => {
                let mode = journal_of(sa).unwrap_or(JournalMode::Data);
                let (oa, ob) = (Self::fs_op(rec, a).unwrap(), Self::fs_op(rec, b).unwrap());
                journal::same_fs_persists_before(mode, oa, ob, graph.happens_before(a, b))
            }
            // Block writes on one device are unordered without a barrier
            // (the commit rule above already handled barriers).
            _ => false,
        }
    }

    /// The lowermost update events, in trace order.
    pub fn updates(&self) -> &[EventId] {
        &self.updates
    }

    /// The lowermost sync events.
    pub fn syncs(&self) -> &[EventId] {
        &self.syncs
    }

    /// `true` iff update `a` is guaranteed durable no later than `b`.
    pub fn persists_before(&self, a: EventId, b: EventId) -> bool {
        self.updates
            .iter()
            .position(|&u| u == a)
            .map(|i| self.before[i].contains(b))
            .unwrap_or(false)
    }

    /// Algorithm 1's `depends_on`: every update that cannot be persisted
    /// if `victim` is not — the forward closure of persists-before
    /// within `universe`. Includes the victim.
    pub fn depends_on(&self, victim: EventId, universe: &BitSet) -> BitSet {
        let mut deps = BitSet::new(self.n_events);
        deps.insert(victim);
        // Events are id-ordered and persists-before implies
        // happens-before implies id order, so one ascending pass closes
        // the set.
        for &op in &self.updates {
            if op == victim || !universe.contains(op) {
                continue;
            }
            if deps.iter().any(|d| self.persists_before(d, op)) {
                deps.insert(op);
            }
        }
        deps
    }

    /// Is `v` pinned durable within `cut` — i.e. does some sync event in
    /// the cut commit it? Pinned updates cannot be crash victims.
    pub fn pinned(&self, rec: &Recorder, graph: &CausalityGraph, v: EventId, cut: &BitSet) -> bool {
        self.syncs
            .iter()
            .any(|&s| cut.contains(s) && Self::commits(rec, v, s) && graph.happens_before(v, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracer::{Layer, Process};

    fn fs_event(rec: &mut Recorder, server: u32, op: FsOp, parent: Option<EventId>) -> EventId {
        rec.record(
            Layer::LocalFs,
            Process::Server(server),
            Payload::Fs { server, op },
            parent,
        )
    }

    fn chain_client(rec: &mut Recorder, n: usize) -> Vec<EventId> {
        (0..n)
            .map(|i| {
                rec.record(
                    Layer::PfsClient,
                    Process::Client(0),
                    Payload::Call {
                        name: format!("op{i}"),
                        args: vec![],
                    },
                    None,
                )
            })
            .collect()
    }

    #[test]
    fn same_fs_data_journal_orders_by_hb() {
        let mut rec = Recorder::new();
        let a = fs_event(&mut rec, 0, FsOp::Creat { path: "/a".into() }, None);
        let b = fs_event(&mut rec, 0, FsOp::Creat { path: "/b".into() }, None);
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Data));
        assert!(pa.persists_before(a, b)); // program order on one server
        assert!(!pa.persists_before(b, a));
    }

    #[test]
    fn cross_server_is_unordered_without_commit() {
        let mut rec = Recorder::new();
        let calls = chain_client(&mut rec, 2);
        let a = fs_event(
            &mut rec,
            0,
            FsOp::Creat { path: "/a".into() },
            Some(calls[0]),
        );
        let b = fs_event(
            &mut rec,
            1,
            FsOp::Creat { path: "/b".into() },
            Some(calls[1]),
        );
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Data));
        assert!(g.happens_before(a, b) || g.concurrent(a, b));
        assert!(!pa.persists_before(a, b));
        assert!(!pa.persists_before(b, a));
    }

    #[test]
    fn fsync_commits_across_servers() {
        let mut rec = Recorder::new();
        // a on server 0; fsync(a's file) on server 0; then b on server 1,
        // causally after the fsync via the client chain.
        let c0 = rec.record(
            Layer::PfsClient,
            Process::Client(0),
            Payload::Call {
                name: "w".into(),
                args: vec![],
            },
            None,
        );
        let a = fs_event(
            &mut rec,
            0,
            FsOp::Append {
                path: "/f".into(),
                data: vec![1],
            },
            Some(c0),
        );
        let s = fs_event(&mut rec, 0, FsOp::Fsync { path: "/f".into() }, Some(a));
        let c1 = rec.record(
            Layer::PfsClient,
            Process::Client(0),
            Payload::Call {
                name: "w2".into(),
                args: vec![],
            },
            None,
        );
        rec.add_edge(s, c1);
        let b = fs_event(&mut rec, 1, FsOp::Creat { path: "/g".into() }, Some(c1));
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Data));
        assert!(pa.persists_before(a, b));
        // And the fsync pins `a` in any cut containing it.
        let mut cut = BitSet::new(rec.len());
        for e in [a, s, b] {
            cut.insert(e);
        }
        assert!(pa.pinned(&rec, &g, a, &cut));
        cut.remove(s);
        assert!(!pa.pinned(&rec, &g, a, &cut));
    }

    #[test]
    fn fdatasync_only_commits_same_file() {
        let mut rec = Recorder::new();
        let a = fs_event(
            &mut rec,
            0,
            FsOp::Append {
                path: "/other".into(),
                data: vec![1],
            },
            None,
        );
        let s = fs_event(&mut rec, 0, FsOp::Fdatasync { path: "/f".into() }, None);
        let b = fs_event(&mut rec, 1, FsOp::Creat { path: "/g".into() }, None);
        rec.add_edge(a, s);
        rec.add_edge(s, b);
        let g = CausalityGraph::build(&rec);
        // Writeback mode so the same-FS rule does not mask the commit
        // rule (data ops are unordered under writeback).
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Writeback));
        assert!(
            !pa.persists_before(a, b),
            "fdatasync of another file commits nothing"
        );
    }

    #[test]
    fn block_ops_need_barriers() {
        use simfs::StructTag;
        let mut rec = Recorder::new();
        let w1 = rec.record(
            Layer::Block,
            Process::Server(0),
            Payload::Block {
                server: 0,
                op: BlockOp::write(1, StructTag::LogFile, vec![1]),
            },
            None,
        );
        let sync = rec.record(
            Layer::Block,
            Process::Server(0),
            Payload::Block {
                server: 0,
                op: BlockOp::SyncCache,
            },
            None,
        );
        let w2 = rec.record(
            Layer::Block,
            Process::Server(0),
            Payload::Block {
                server: 0,
                op: BlockOp::write(2, StructTag::AllocMap, vec![2]),
            },
            None,
        );
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| None);
        assert!(pa.persists_before(w1, w2)); // barrier between
        assert!(!pa.persists_before(w2, w1));
        let _ = sync;

        // Without a barrier the same-device pair is unordered.
        let mut rec2 = Recorder::new();
        let a = rec2.record(
            Layer::Block,
            Process::Server(0),
            Payload::Block {
                server: 0,
                op: BlockOp::write(1, StructTag::LogFile, vec![1]),
            },
            None,
        );
        let b = rec2.record(
            Layer::Block,
            Process::Server(0),
            Payload::Block {
                server: 0,
                op: BlockOp::write(2, StructTag::AllocMap, vec![2]),
            },
            None,
        );
        let g2 = CausalityGraph::build(&rec2);
        let pa2 = PersistAnalysis::build(&rec2, &g2, |_| None);
        assert!(!pa2.persists_before(a, b));
    }

    #[test]
    fn depends_on_closes_forward() {
        let mut rec = Recorder::new();
        let a = fs_event(&mut rec, 0, FsOp::Creat { path: "/a".into() }, None);
        let b = fs_event(&mut rec, 0, FsOp::Creat { path: "/b".into() }, None);
        let c = fs_event(&mut rec, 0, FsOp::Creat { path: "/c".into() }, None);
        let other = fs_event(&mut rec, 1, FsOp::Creat { path: "/x".into() }, None);
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Data));
        let universe = BitSet::from_iter(rec.len(), [a, b, c, other]);
        let deps = pa.depends_on(a, &universe);
        assert!(deps.contains(a) && deps.contains(b) && deps.contains(c));
        assert!(!deps.contains(other));
        // Dropping the middle op keeps the first.
        let deps_b = pa.depends_on(b, &universe);
        assert!(!deps_b.contains(a) && deps_b.contains(c));
    }
}
