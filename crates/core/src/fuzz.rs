//! Bounded black-box workload fuzzing (the B3 recipe, applied to the
//! cross-layer stack).
//!
//! The paper's evaluation replays eleven fixed test programs; every
//! REPRODUCED verdict is therefore a *re-confirmation*. This module
//! turns the checker into a *discovery* engine, following "Finding
//! Crash-Consistency Bugs with Bounded Black-Box Crash Testing" (B3,
//! OSDI '18): systematically enumerate **every** operation sequence up
//! to a small length bound over a **bounded vocabulary** (few files,
//! few directories, canned write arguments), run each sequence through
//! the full crash-consistency check, and deduplicate what comes back.
//!
//! Three pieces live here, all workload-agnostic (the concrete POSIX /
//! HDF5 / MPI-IO vocabularies are `workloads::generated`, which this
//! crate cannot see — `workloads` depends on `paracrash`, not the other
//! way around):
//!
//! * [`bounded_sequences`] — exhaustive, duplicate-free enumeration of
//!   the sequences of length `1..=bound` over a vocabulary, with
//!   prefix-validity pruning (an inexecutable prefix prunes its whole
//!   subtree). Enumeration order is the vocabulary order, radix style,
//!   so the corpus is deterministic by construction — no RNG involved.
//! * [`sample_indices`] — the seeded sampling mode: a deterministic
//!   `k`-subset of a corpus for bounds whose exhaustive sweep is too
//!   large for a CI tier (the nightly crash gate samples seq-3).
//! * [`FuzzCorpus`] — the dedup-and-triage accumulator: every checked
//!   `(workload, stack)` cell is folded in, findings are deduplicated
//!   by **canonical signature key** (the Pathfinder observation:
//!   many workloads collapse into few crash-state equivalence classes),
//!   and [`FuzzCorpus::canonical_report`] renders the whole campaign as
//!   a byte-stable string — the artifact the CI crash gate diffs across
//!   thread counts and pins across PRs.
//!
//! Determinism contract: same vocabulary, bound and seed ⇒ byte-
//! identical corpus and findings, sequential ≡ parallel. This holds
//! because enumeration is RNG-free, sampling draws from a fixed-seed
//! [`pc_rt::rng::Rng`], and the per-cell verdicts come from
//! [`check_stack`](crate::check_stack), whose `canonical_report` is
//! already `PC_THREADS`-invariant (chaos-suite pinned).

use crate::check::{CheckOutcome, LayerVerdict};
use h5sim::json::Json;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Enumerate every sequence of length `1..=bound` over `vocab`, in
/// vocabulary (radix) order, keeping only sequences every prefix of
/// which satisfies `valid`.
///
/// `valid` must be **prefix-monotone**: if a sequence is invalid, every
/// extension of it is too (true for executability — you cannot repair a
/// failed `creat` by appending more calls). The enumerator exploits
/// that to prune whole subtrees, so the cost is proportional to the
/// number of *valid* prefixes, not `|vocab|^bound`.
///
/// The result is exhaustive and duplicate-free by construction: every
/// valid sequence appears exactly once (property-pinned in
/// `tests/fuzz_generator.rs`).
pub fn bounded_sequences<T: Clone>(
    vocab: &[T],
    bound: usize,
    mut valid: impl FnMut(&[T]) -> bool,
) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut seq: Vec<T> = Vec::with_capacity(bound);
    // Iterative DFS over vocabulary indices: `cursor[d]` is the next
    // vocabulary index to try at depth `d`.
    let mut cursor: Vec<usize> = vec![0];
    while let Some(next) = cursor.last_mut() {
        if *next >= vocab.len() {
            cursor.pop();
            seq.pop();
            if let Some(parent) = cursor.last_mut() {
                *parent += 1;
            }
            continue;
        }
        seq.push(vocab[*next].clone());
        if valid(&seq) {
            out.push(seq.clone());
            if seq.len() < bound {
                cursor.push(0);
                continue;
            }
        }
        seq.pop();
        *next += 1;
    }
    out
}

/// A deterministic `k`-subset of `0..n`, in increasing order (so the
/// sampled corpus preserves enumeration order). Partial Fisher–Yates
/// over the index space, seeded; `k >= n` returns all indices.
pub fn sample_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    let mut rng = pc_rt::rng::Rng::new(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.gen_index(n - i);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// FNV-1a over bytes: a stable, dependency-free digest for behavior
/// classes. (Not `DefaultHasher`, whose algorithm is unspecified across
/// toolchains — corpus digests must never move under a compiler bump.)
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One deduplicated fuzzing finding: a bug signature first exposed by
/// some generated workload on some `(fs, journal)` cell.
#[derive(Debug, Clone)]
pub struct FuzzFinding {
    /// Label of the first (representative) workload exposing it.
    pub workload: String,
    /// File system under test.
    pub fs: String,
    /// Local-FS journaling mode of the cell (`data`, `ordered`, …).
    pub journal: String,
    /// Canonical bug signature (reordering pair / atomicity group).
    pub signature: String,
    /// Layer attribution of the verdict.
    pub layer: LayerVerdict,
    /// Weakest violated crash-consistency model, as a string.
    pub violated_model: String,
    /// Witness operations of the representative crash state.
    pub witness: Vec<String>,
    /// Crash states exposing this cause in the representative cell.
    pub occurrences: usize,
    /// How many *other* generated workloads re-exposed the same key
    /// (the dedup counter — Pathfinder's "representative testing").
    pub duplicates: usize,
}

/// Dedup key: a finding is novel iff no prior cell produced the same
/// signature with the same layer verdict on the same `(fs, journal)`.
pub type FindingKey = (String, String, String, LayerVerdict);

/// Campaign accumulator: cells go in, deduplicated findings and
/// behavior classes come out.
#[derive(Debug, Default)]
pub struct FuzzCorpus {
    /// Deduplicated findings, keyed by `(fs, journal, signature,
    /// layer)`, insertion-order id in [`FuzzFinding::workload`] order.
    findings: BTreeMap<FindingKey, FuzzFinding>,
    /// Behavior classes: digest of a cell's *decision content* (its bug
    /// signatures + layers, not its state counts) → (representative
    /// workload, population). Clean cells share one class per
    /// `(fs, journal)`.
    behaviors: BTreeMap<u64, (String, usize)>,
    /// Checked `(workload, fs, journal)` cells.
    pub cells: usize,
    /// Cells with at least one inconsistency.
    pub buggy_cells: usize,
    /// Per-cell diagnostics (panicking recovery tools etc.), copied
    /// verbatim from the outcomes, in check order.
    pub diagnostics: Vec<String>,
    /// Distinct representative crash-state digests seen across all
    /// cells (Pathfinder-style state identity, fed from
    /// [`CheckOutcome::rep_digests`] when the checker collects them).
    /// This is the cross-run dedup index the campaign engine persists.
    rep_states: BTreeSet<u64>,
}

impl FuzzCorpus {
    /// Fresh, empty corpus.
    pub fn new() -> FuzzCorpus {
        FuzzCorpus::default()
    }

    /// Number of deduplicated findings so far.
    pub fn finding_count(&self) -> usize {
        self.findings.len()
    }

    /// Number of distinct behavior classes so far.
    pub fn behavior_count(&self) -> usize {
        self.behaviors.len()
    }

    /// Number of distinct representative crash states seen so far.
    pub fn rep_state_count(&self) -> usize {
        self.rep_states.len()
    }

    /// Number of behavior classes seen in exactly one cell so far.
    pub fn singleton_behaviors(&self) -> usize {
        self.behaviors
            .values()
            .filter(|&&(_, pop)| pop == 1)
            .count()
    }

    /// Good–Turing coverage-saturation estimate in `[0, 1]`: the
    /// probability that the *next* cell lands in an already-seen
    /// behavior class, estimated as `1 − singletons / cells` (Turing's
    /// missing-mass estimator — the fraction of cells that discovered a
    /// class never seen again bounds the undiscovered mass). 0.0 while
    /// the corpus is empty; approaches 1.0 as discovery dries up, which
    /// is the campaign driver's "coverage has saturated" signal.
    pub fn saturation(&self) -> f64 {
        if self.cells == 0 {
            return 0.0;
        }
        1.0 - self.singleton_behaviors() as f64 / self.cells as f64
    }

    /// Iterate the deduplicated findings in canonical (key) order.
    pub fn findings(&self) -> impl Iterator<Item = &FuzzFinding> {
        self.findings.values()
    }

    /// Fold one checked cell into the corpus. Returns the keys of the
    /// findings this cell *newly* contributed (the triage hook: the
    /// campaign driver re-runs exactly those cells through the explain
    /// engine and writes per-finding bundles).
    pub fn record_cell(
        &mut self,
        workload: &str,
        fs: &str,
        journal: &str,
        outcome: &CheckOutcome,
    ) -> Vec<FindingKey> {
        self.cells += 1;
        if outcome.raw_inconsistent_states > 0 {
            self.buggy_cells += 1;
        }
        for d in &outcome.diagnostics {
            self.diagnostics
                .push(format!("{workload} on {fs}/{journal}: {d}"));
        }
        for &digest in &outcome.rep_digests {
            self.rep_states.insert(digest);
        }

        // Behavior class: what the checker *decided*, independent of
        // how many crash states said it.
        let mut decision = format!("{fs}/{journal}\n");
        let mut lines: Vec<String> = outcome
            .bugs
            .iter()
            .map(|b| {
                format!(
                    "{} [{:?}] {}",
                    b.signature,
                    b.layer,
                    b.violated_model.as_str()
                )
            })
            .collect();
        lines.sort();
        for l in &lines {
            decision.push_str(l);
            decision.push('\n');
        }
        let class = fnv1a(decision.as_bytes());
        let entry = self
            .behaviors
            .entry(class)
            .or_insert_with(|| (workload.to_string(), 0));
        entry.1 += 1;

        let mut novel = Vec::new();
        for bug in &outcome.bugs {
            let key: FindingKey = (
                fs.to_string(),
                journal.to_string(),
                bug.signature.to_string(),
                bug.layer,
            );
            match self.findings.get_mut(&key) {
                Some(f) => f.duplicates += 1,
                None => {
                    self.findings.insert(
                        key.clone(),
                        FuzzFinding {
                            workload: workload.to_string(),
                            fs: fs.to_string(),
                            journal: journal.to_string(),
                            signature: bug.signature.to_string(),
                            layer: bug.layer,
                            violated_model: bug.violated_model.as_str().to_string(),
                            witness: bug.witness.clone(),
                            occurrences: bug.occurrences,
                            duplicates: 0,
                        },
                    );
                    novel.push(key);
                }
            }
        }
        novel
    }

    /// Byte-stable rendering of everything the campaign decided:
    /// finding lines in key order, behavior/cell tallies, diagnostics.
    /// Two runs over the same corpus must produce identical bytes on
    /// any `PC_THREADS` — this is the string the crash gate diffs and
    /// the pinned-corpus regression test compares.
    pub fn canonical_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cells={} buggy={} findings={} behaviors={} rep_states={}",
            self.cells,
            self.buggy_cells,
            self.findings.len(),
            self.behaviors.len(),
            self.rep_states.len(),
        );
        for f in self.findings.values() {
            let _ = writeln!(
                out,
                "finding {}/{} {} [{:?}] violates {} x{} dup={} first={}",
                f.fs,
                f.journal,
                f.signature,
                f.layer,
                f.violated_model,
                f.occurrences,
                f.duplicates,
                f.workload,
            );
        }
        for d in &self.diagnostics {
            let _ = writeln!(out, "diagnostic: {d}");
        }
        out
    }

    /// Serialize the whole corpus for a campaign checkpoint. Everything
    /// [`FuzzCorpus::canonical_report`] renders — plus the dedup
    /// indexes behind it — round-trips through
    /// [`FuzzCorpus::from_json`] byte-identically.
    pub fn to_json(&self) -> Json {
        let layer_str = |l: LayerVerdict| {
            Json::Str(
                match l {
                    LayerVerdict::IoLibBug => "iolib",
                    LayerVerdict::PfsBug => "pfs",
                }
                .to_string(),
            )
        };
        let findings = self
            .findings
            .values()
            .map(|f| {
                Json::Obj(vec![
                    ("workload".into(), Json::Str(f.workload.clone())),
                    ("fs".into(), Json::Str(f.fs.clone())),
                    ("journal".into(), Json::Str(f.journal.clone())),
                    ("signature".into(), Json::Str(f.signature.clone())),
                    ("layer".into(), layer_str(f.layer)),
                    ("violated_model".into(), Json::Str(f.violated_model.clone())),
                    (
                        "witness".into(),
                        Json::Arr(f.witness.iter().cloned().map(Json::Str).collect()),
                    ),
                    ("occurrences".into(), Json::Int(f.occurrences as u64)),
                    ("duplicates".into(), Json::Int(f.duplicates as u64)),
                ])
            })
            .collect();
        let behaviors = self
            .behaviors
            .iter()
            .map(|(&class, (workload, pop))| {
                Json::Obj(vec![
                    ("class".into(), Json::Int(class)),
                    ("workload".into(), Json::Str(workload.clone())),
                    ("population".into(), Json::Int(*pop as u64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("cells".into(), Json::Int(self.cells as u64)),
            ("buggy_cells".into(), Json::Int(self.buggy_cells as u64)),
            (
                "rep_states".into(),
                Json::Arr(self.rep_states.iter().map(|&d| Json::Int(d)).collect()),
            ),
            (
                "diagnostics".into(),
                Json::Arr(self.diagnostics.iter().cloned().map(Json::Str).collect()),
            ),
            ("behaviors".into(), Json::Arr(behaviors)),
            ("findings".into(), Json::Arr(findings)),
        ])
    }

    /// Reconstruct a corpus from a [`FuzzCorpus::to_json`] checkpoint.
    pub fn from_json(json: &Json) -> Result<FuzzCorpus, String> {
        let int = |j: &Json, key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_int)
                .ok_or_else(|| format!("corpus checkpoint: missing int {key}"))
        };
        let str_of = |j: &Json, key: &str| -> Result<String, String> {
            Ok(j.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("corpus checkpoint: missing string {key}"))?
                .to_string())
        };
        let arr = |j: &Json, key: &str| -> Result<Vec<Json>, String> {
            Ok(j.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("corpus checkpoint: missing array {key}"))?
                .to_vec())
        };
        let mut corpus = FuzzCorpus::new();
        corpus.cells = int(json, "cells")? as usize;
        corpus.buggy_cells = int(json, "buggy_cells")? as usize;
        for d in arr(json, "rep_states")? {
            corpus.rep_states.insert(
                d.as_int()
                    .ok_or("corpus checkpoint: non-int rep state digest")?,
            );
        }
        for d in arr(json, "diagnostics")? {
            corpus.diagnostics.push(
                d.as_str()
                    .ok_or("corpus checkpoint: non-string diagnostic")?
                    .to_string(),
            );
        }
        for b in arr(json, "behaviors")? {
            corpus.behaviors.insert(
                int(&b, "class")?,
                (str_of(&b, "workload")?, int(&b, "population")? as usize),
            );
        }
        for f in arr(json, "findings")? {
            let layer = match str_of(&f, "layer")?.as_str() {
                "iolib" => LayerVerdict::IoLibBug,
                "pfs" => LayerVerdict::PfsBug,
                other => return Err(format!("corpus checkpoint: unknown layer {other}")),
            };
            let mut witness = Vec::new();
            for w in arr(&f, "witness")? {
                witness.push(
                    w.as_str()
                        .ok_or("corpus checkpoint: non-string witness op")?
                        .to_string(),
                );
            }
            let finding = FuzzFinding {
                workload: str_of(&f, "workload")?,
                fs: str_of(&f, "fs")?,
                journal: str_of(&f, "journal")?,
                signature: str_of(&f, "signature")?,
                layer,
                violated_model: str_of(&f, "violated_model")?,
                witness,
                occurrences: int(&f, "occurrences")? as usize,
                duplicates: int(&f, "duplicates")? as usize,
            };
            let key: FindingKey = (
                finding.fs.clone(),
                finding.journal.clone(),
                finding.signature.clone(),
                finding.layer,
            );
            corpus.findings.insert(key, finding);
        }
        Ok(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_exhaustive_and_duplicate_free() {
        // Unconstrained vocabulary of 3 ops, bound 2: 3 + 9 sequences.
        let vocab = [0u8, 1, 2];
        let seqs = bounded_sequences(&vocab, 2, |_| true);
        assert_eq!(seqs.len(), 12);
        let mut seen = std::collections::BTreeSet::new();
        for s in &seqs {
            assert!(seen.insert(s.clone()), "duplicate {s:?}");
        }
        // Radix order: length-1 prefix comes right before its children.
        assert_eq!(seqs[0], vec![0]);
        assert_eq!(seqs[1], vec![0, 0]);
        assert_eq!(seqs[4], vec![1]);
    }

    #[test]
    fn validity_prunes_subtrees() {
        // Forbid anything starting with 1: its 3 children disappear too.
        let vocab = [0u8, 1, 2];
        let seqs = bounded_sequences(&vocab, 2, |s| s[0] != 1);
        assert_eq!(seqs.len(), 8);
        assert!(seqs.iter().all(|s| s[0] != 1));
        // The invalid prefix is never *extended* (prefix-monotone
        // pruning): no sequence [1, _] survives even where the suffix
        // alone would be fine.
        assert!(seqs.iter().all(|s| s != &vec![1, 0]));
    }

    #[test]
    fn sampling_is_deterministic_and_ordered() {
        let a = sample_indices(100, 10, 42);
        let b = sample_indices(100, 10, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&i| i < 100));
        let c = sample_indices(100, 10, 43);
        assert_ne!(a, c, "different seeds should (here) differ");
        assert_eq!(sample_indices(5, 10, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn corpus_dedups_by_key_and_counts_behaviors() {
        use crate::classify::{BugKind, BugSignature};
        use crate::model::Model;
        let bug = crate::check::Inconsistency {
            signature: BugSignature {
                kind: BugKind::Reordering,
                members: vec!["a@x".into(), "b@y".into()],
            },
            layer: LayerVerdict::PfsBug,
            violated_model: Model::Causal,
            witness: vec!["w".into()],
            occurrences: 3,
        };
        let buggy = CheckOutcome {
            pfs_name: "BeeGFS".into(),
            bugs: vec![bug],
            raw_inconsistent_states: 3,
            ..Default::default()
        };
        let clean = CheckOutcome {
            pfs_name: "BeeGFS".into(),
            ..Default::default()
        };
        let mut corpus = FuzzCorpus::new();
        let novel = corpus.record_cell("w1", "BeeGFS", "data", &buggy);
        assert_eq!(novel.len(), 1);
        let again = corpus.record_cell("w2", "BeeGFS", "data", &buggy);
        assert!(again.is_empty(), "same key must dedup");
        corpus.record_cell("w3", "BeeGFS", "data", &clean);
        corpus.record_cell("w4", "BeeGFS", "data", &clean);
        assert_eq!(corpus.finding_count(), 1);
        assert_eq!(corpus.behavior_count(), 2, "buggy class + clean class");
        assert_eq!(corpus.cells, 4);
        assert_eq!(corpus.buggy_cells, 2);
        let f = corpus.findings().next().unwrap();
        assert_eq!(f.duplicates, 1);
        assert_eq!(f.workload, "w1");
        let report = corpus.canonical_report();
        assert!(report.starts_with("cells=4 buggy=2 findings=1 behaviors=2"));
        assert!(report.contains("first=w1"));
    }

    #[test]
    fn rep_states_dedup_across_cells() {
        let mut corpus = FuzzCorpus::new();
        let outcome_a = CheckOutcome {
            rep_digests: vec![1, 2, 3],
            ..Default::default()
        };
        let outcome_b = CheckOutcome {
            rep_digests: vec![2, 3, 4],
            ..Default::default()
        };
        corpus.record_cell("w1", "BeeGFS", "data", &outcome_a);
        corpus.record_cell("w2", "BeeGFS", "data", &outcome_b);
        assert_eq!(corpus.rep_state_count(), 4, "overlap must dedup");
        assert!(corpus
            .canonical_report()
            .starts_with("cells=2 buggy=0 findings=0 behaviors=1 rep_states=4"));
        assert_eq!(corpus.saturation(), 1.0, "one class, seen twice");
    }

    #[test]
    fn saturation_is_finite_on_empty_and_tiny_corpora() {
        let corpus = FuzzCorpus::new();
        assert_eq!(corpus.saturation(), 0.0, "zero cells must not divide");
        assert!(corpus.saturation().is_finite());
        let mut one = FuzzCorpus::new();
        one.record_cell("w", "BeeGFS", "data", &CheckOutcome::default());
        assert!(one.saturation().is_finite());
        assert_eq!(one.saturation(), 0.0, "a lone singleton class");
    }

    #[test]
    fn corpus_json_roundtrips_byte_identically() {
        use crate::classify::{BugKind, BugSignature};
        use crate::model::Model;
        let bug = crate::check::Inconsistency {
            signature: BugSignature {
                kind: BugKind::Atomicity,
                members: vec!["a@x".into(), "b@y".into()],
            },
            layer: LayerVerdict::IoLibBug,
            violated_model: Model::Baseline,
            witness: vec!["setsize f 4096".into()],
            occurrences: 2,
        };
        let buggy = CheckOutcome {
            pfs_name: "OrangeFS".into(),
            bugs: vec![bug],
            raw_inconsistent_states: 2,
            diagnostics: vec!["recovery panicked: oops".into()],
            rep_digests: vec![11, 22],
            ..Default::default()
        };
        let mut corpus = FuzzCorpus::new();
        corpus.record_cell("w1", "OrangeFS", "ordered", &buggy);
        corpus.record_cell("w2", "OrangeFS", "ordered", &buggy);
        corpus.record_cell("w3", "OrangeFS", "ordered", &CheckOutcome::default());
        let json = corpus.to_json().pretty();
        let restored = FuzzCorpus::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(restored.canonical_report(), corpus.canonical_report());
        assert_eq!(restored.rep_state_count(), corpus.rep_state_count());
        assert_eq!(restored.singleton_behaviors(), corpus.singleton_behaviors());
        // And a second hop is stable too (no lossy field).
        let again =
            FuzzCorpus::from_json(&Json::parse(&restored.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(again.canonical_report(), corpus.canonical_report());
        assert!(FuzzCorpus::from_json(&Json::parse("{}").unwrap()).is_err());
    }
}
