//! Operation signatures and bug-report rendering in the paper's
//! Table 3 notation (`op(structure)@server-role`, `A → B` for ordering,
//! `[A, B]` for atomicity).

use simfs::BlockOp;
use simnet::{ClusterTopology, ServerRole};
use tracer::{EventId, Payload, Recorder};

/// The semantic object a trace event updates, if any — resolved by
/// walking the caller chain up to the nearest labelled ancestor (the
/// I/O-library layer labels its structure writes).
pub fn object_of(rec: &Recorder, e: EventId) -> Option<String> {
    let mut cur = Some(e);
    while let Some(id) = cur {
        let ev = rec.event(id);
        if let Some(obj) = &ev.object {
            return Some(obj.clone());
        }
        cur = ev.parent;
    }
    None
}

/// Strip the instance suffix from an object label:
/// `"local heap of g1"` → `"local heap"`, so that equivalent bugs on
/// different groups aggregate (§5.2).
pub fn normalize_object(label: &str) -> String {
    match label.find(" of ") {
        Some(i) => label[..i].to_string(),
        None => label.to_string(),
    }
}

/// Map a server-local path to the PFS structure kind it implements —
/// the vocabulary of Table 3's "Details" column. Delegates to
/// [`pfs::label::structure_kind`], the canonical label table for all
/// five models (kept there so the labels stay with the models that
/// define the namespaces).
pub fn path_kind(path: &str) -> &'static str {
    pfs::label::structure_kind(path)
}

/// Render the role of a server for signatures.
pub fn role_name(topo: &ClusterTopology, server: u32) -> &'static str {
    match topo.role(server) {
        Some(ServerRole::Metadata) => "metadata",
        Some(ServerRole::Storage) => "storage",
        Some(ServerRole::Combined) | None => "server",
    }
}

/// Aggregation signature of one lowermost event: object-label based
/// when the I/O library labelled it, path/tag based otherwise.
pub fn op_sig(rec: &Recorder, topo: &ClusterTopology, e: EventId) -> String {
    let ev = rec.event(e);
    match &ev.payload {
        Payload::Fs { server, op } => {
            if let Some(obj) = object_of(rec, e) {
                return format!("write({})", normalize_object(&obj));
            }
            let kind = op.primary_path().map(path_kind).unwrap_or("fs");
            format!("{}({kind})@{}", op.mnemonic(), role_name(topo, *server))
        }
        Payload::Block { server, op } => {
            if let Some(obj) = object_of(rec, e) {
                return format!("write({})", normalize_object(&obj));
            }
            match op {
                BlockOp::Write { tag, .. } => {
                    let kind = pfs::label::block_structure(tag);
                    format!("write({kind})@{}", role_name(topo, *server))
                }
                BlockOp::SyncCache => format!("scsi_sync@{}", role_name(topo, *server)),
            }
        }
        _ => "non-storage".to_string(),
    }
}

/// A fully-described event for bug reports (includes the concrete path /
/// LBA and server id, like the paper's `append(file chunk of tmp)@storage`).
pub fn op_detail(rec: &Recorder, topo: &ClusterTopology, e: EventId) -> String {
    let ev = rec.event(e);
    match &ev.payload {
        Payload::Fs { server, op } => {
            format!("{}@{}#{}", op, role_name(topo, *server), server)
        }
        Payload::Block { server, op } => {
            format!("{}@{}#{}", op, role_name(topo, *server), server)
        }
        _ => ev.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::FsOp;
    use tracer::{Layer, Process};

    #[test]
    fn path_kinds_cover_all_models() {
        assert_eq!(path_kind("/chunks/f0.0"), "file chunk");
        assert_eq!(path_kind("/idfiles/f0"), "idfile");
        assert_eq!(path_kind("/dentries/root/foo"), "d_entry");
        assert_eq!(path_kind("/db/keyval.db"), "keyval.db");
        assert_eq!(path_kind("/bstreams/h0.0"), "bstream");
        assert_eq!(path_kind("/objects/o0.0"), "object");
        assert_eq!(path_kind("/mdt/foo"), "mdt entry");
        assert_eq!(path_kind("/data/foo"), "brick entry");
        assert_eq!(path_kind("/whatever"), "file");
    }

    #[test]
    fn normalization_strips_instances() {
        assert_eq!(normalize_object("local heap of g1"), "local heap");
        assert_eq!(normalize_object("superblock"), "superblock");
        assert_eq!(
            normalize_object("B-tree node of dataset g1/d1"),
            "B-tree node"
        );
    }

    #[test]
    fn signatures_use_roles_and_labels() {
        let topo = ClusterTopology::dedicated(2, 2, 1);
        let mut rec = Recorder::new();
        let labelled = rec.record_labeled(
            Layer::LocalFs,
            Process::Server(2),
            Payload::Fs {
                server: 2,
                op: FsOp::Append {
                    path: "/chunks/f0.0".into(),
                    data: vec![1],
                },
            },
            None,
            "data chunks of g1/d1",
        );
        let plain = rec.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: FsOp::Rename {
                    src: "/dentries/root/tmp".into(),
                    dst: "/dentries/root/file".into(),
                },
            },
            None,
        );
        assert_eq!(op_sig(&rec, &topo, labelled), "write(data chunks)");
        assert_eq!(op_sig(&rec, &topo, plain), "rename(d_entry)@metadata");
        assert!(op_detail(&rec, &topo, plain).contains("@metadata#0"));
    }

    #[test]
    fn labels_inherit_through_parents() {
        let topo = ClusterTopology::combined(2, 1);
        let mut rec = Recorder::new();
        let top = rec.record_labeled(
            Layer::IoLib,
            Process::Client(0),
            Payload::Call {
                name: "H5Dcreate".into(),
                args: vec![],
            },
            None,
            "symbol table node of g1",
        );
        let low = rec.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: FsOp::Pwrite {
                    path: "/data/f.h5".into(),
                    offset: 0,
                    data: vec![0],
                },
            },
            Some(top),
        );
        assert_eq!(
            object_of(&rec, low).as_deref(),
            Some("symbol table node of g1")
        );
        assert_eq!(op_sig(&rec, &topo, low), "write(symbol table node)");
    }
}
