//! `history` — the durable run-to-run performance history.
//!
//! The committed `BENCH_*.json` files are one-shot snapshots; a
//! long-lived checkout accumulates no trend. This module gives every
//! profiled run a durable perf record: `--history-dir DIR` appends one
//! [`RunRecord`] per run to a crash-safe [`RecordLog`]
//! (`DIR/history.log` — CRC-checked, fsynced, torn-tail-recovering, the
//! same primitive the resumable campaign engine commits cells to), and
//! the `paracrash history` subcommand reads the trend back:
//!
//! * `history show` — one table row per recorded run;
//! * `history diff` — last two runs, per-metric ratios, exit 1 when a
//!   normalized metric regressed past `--band` (default 1.5×);
//! * `history regressions` — every consecutive pair, the ratchet a CI
//!   job can run after `scale-check --live`.
//!
//! Records serialize as JSON payloads inside the record log, so the
//! format is self-describing and old logs keep parsing as fields grow
//! (unknown fields are ignored, missing ones default to zero).

use std::io;
use std::path::Path;

use h5sim::json::Json;
use pc_rt::bench::fmt_ns;
use pc_rt::durable::RecordLog;
use pc_rt::obs::prof::fmt_bytes;
use pc_rt::obs::TelemetrySnapshot;

/// File name of the record log inside `--history-dir`.
pub const HISTORY_LOG: &str = "history.log";

/// Default regression band for `history diff` / `history regressions`:
/// a normalized metric may grow up to this ratio before it flags.
pub const DEFAULT_BAND: f64 = 1.5;

/// How many per-stage rows a record keeps (largest total first).
const STAGE_CAP: usize = 12;

/// One recorded run: normalized throughput plus the attribution columns
/// the profiler measured.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunRecord {
    /// Run flavor (`fuzz`, `campaign`, `cell`).
    pub kind: String,
    /// Human label (workload/fs summary, corpus tag).
    pub label: String,
    /// Units of work completed (crash states or cells checked) — the
    /// denominator every cross-run comparison normalizes by.
    pub work: u64,
    /// Wall-clock nanoseconds for the run.
    pub wall_ns: u64,
    /// Per-stage span totals (name, summed ns), largest first, top 12.
    pub stages: Vec<(String, u64)>,
    /// Total bytes allocated while accounting was on.
    pub alloc_bytes: u64,
    /// Peak net live bytes while accounting was on.
    pub alloc_peak: u64,
    /// Peak resident set (`VmHWM` from `/proc/self/status`), kB;
    /// 0 where the kernel interface is unavailable.
    pub peak_rss_kb: u64,
}

impl RunRecord {
    /// Build a record from a finished run's telemetry snapshot.
    pub fn from_run(
        kind: &str,
        label: &str,
        work: u64,
        wall_ns: u64,
        snap: &TelemetrySnapshot,
    ) -> RunRecord {
        let mut totals: Vec<(String, u64)> = Vec::new();
        for s in &snap.spans {
            match totals.iter_mut().find(|(n, _)| n == s.name) {
                Some((_, t)) => *t += s.dur_ns,
                None => totals.push((s.name.to_string(), s.dur_ns)),
            }
        }
        totals.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        totals.truncate(STAGE_CAP);
        RunRecord {
            kind: kind.to_string(),
            label: label.to_string(),
            work,
            wall_ns,
            stages: totals,
            alloc_bytes: snap.alloc_total.bytes,
            alloc_peak: snap.alloc_total.peak_bytes,
            peak_rss_kb: peak_rss_kb(),
        }
    }

    /// Serialize as the JSON payload stored in the record log.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str(self.kind.clone())),
            ("label".into(), Json::Str(self.label.clone())),
            ("work".into(), Json::Int(self.work)),
            ("wall_ns".into(), Json::Int(self.wall_ns)),
            (
                "stages".into(),
                Json::Arr(
                    self.stages
                        .iter()
                        .map(|(n, t)| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(n.clone())),
                                ("total_ns".into(), Json::Int(*t)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("alloc_bytes".into(), Json::Int(self.alloc_bytes)),
            ("alloc_peak".into(), Json::Int(self.alloc_peak)),
            ("peak_rss_kb".into(), Json::Int(self.peak_rss_kb)),
        ])
    }

    /// Parse a record-log payload. Missing numeric fields default to 0
    /// so records written by older builds keep loading.
    pub fn parse(payload: &str) -> Result<RunRecord, String> {
        let j = Json::parse(payload)?;
        let int = |k: &str| j.get(k).and_then(Json::as_int).unwrap_or(0);
        let text = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let mut stages = Vec::new();
        if let Some(rows) = j.get("stages").and_then(Json::as_arr) {
            for row in rows {
                let name = row
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("stage row without name")?;
                let total = row.get("total_ns").and_then(Json::as_int).unwrap_or(0);
                stages.push((name.to_string(), total));
            }
        }
        Ok(RunRecord {
            kind: text("kind"),
            label: text("label"),
            work: int("work"),
            wall_ns: int("wall_ns"),
            stages,
            alloc_bytes: int("alloc_bytes"),
            alloc_peak: int("alloc_peak"),
            peak_rss_kb: int("peak_rss_kb"),
        })
    }

    /// Wall nanoseconds per unit of work (the run's headline metric).
    pub fn ns_per_work(&self) -> f64 {
        self.wall_ns as f64 / self.work.max(1) as f64
    }

    /// Allocated bytes per unit of work.
    pub fn alloc_per_work(&self) -> f64 {
        self.alloc_bytes as f64 / self.work.max(1) as f64
    }
}

/// Peak resident set size in kB (`VmHWM` from `/proc/self/status`);
/// 0 when the interface is unavailable (non-Linux, sandboxed).
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Append one record to `dir/history.log` (creating the directory).
pub fn append(dir: &Path, rec: &RunRecord) -> io::Result<()> {
    let (mut log, _) = RecordLog::open(&dir.join(HISTORY_LOG))?;
    log.append(rec.to_json().pretty().as_bytes())
}

/// Load every intact record from `dir/history.log` in append order
/// (torn tails are truncated by the log itself; a payload that is not
/// valid JSON is an `InvalidData` error, not silent loss).
pub fn load(dir: &Path) -> io::Result<Vec<RunRecord>> {
    let path = dir.join(HISTORY_LOG);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let (_, payloads) = RecordLog::open(&path)?;
    let mut out = Vec::with_capacity(payloads.len());
    for (i, p) in payloads.iter().enumerate() {
        let text = String::from_utf8_lossy(p);
        let rec = RunRecord::parse(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("history record {}: {e}", i + 1),
            )
        })?;
        out.push(rec);
    }
    Ok(out)
}

/// Render the `history show` table: one row per recorded run.
pub fn render_show(records: &[RunRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<4} {:<10} {:<24} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "#", "kind", "label", "work", "wall", "ns/work", "alloc", "rss"
    );
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<4} {:<10} {:<24} {:>10} {:>12} {:>12} {:>12} {:>10}",
            i + 1,
            r.kind,
            if r.label.len() > 24 {
                &r.label[..24]
            } else {
                &r.label
            },
            r.work,
            fmt_ns(r.wall_ns as f64),
            fmt_ns(r.ns_per_work()),
            fmt_bytes(r.alloc_bytes as f64),
            if r.peak_rss_kb > 0 {
                fmt_bytes(r.peak_rss_kb as f64 * 1024.0)
            } else {
                "n/a".to_string()
            },
        );
    }
    if records.is_empty() {
        out.push_str("(no recorded runs)\n");
    }
    out
}

fn ratio(old: f64, new: f64) -> f64 {
    if old <= 0.0 {
        if new <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        new / old
    }
}

/// Compare two runs metric by metric. Returns the rendered report and
/// whether any normalized metric regressed by at least `band` (for
/// runs that share a `kind`; comparing a fuzz run against a campaign
/// run renders but never flags).
pub fn diff(old: &RunRecord, new: &RunRecord, band: f64) -> (String, bool) {
    use std::fmt::Write as _;
    let mut out = String::new();
    let comparable = old.kind == new.kind;
    let _ = writeln!(
        out,
        "history diff: {} [{}] → {} [{}]  (band {band:.2}×{})",
        old.kind,
        old.label,
        new.kind,
        new.label,
        if comparable {
            ""
        } else {
            "; kinds differ — informational only"
        },
    );
    let mut flagged = false;
    let mut metric = |name: &str, o: f64, n: f64, rendered_o: String, rendered_n: String| {
        let r = ratio(o, n);
        let mark = if comparable && r >= band && n > 0.0 {
            flagged = true;
            "  ← REGRESSION"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {:<18} {:>12} → {:>12}  ({:>6}×){mark}",
            name,
            rendered_o,
            rendered_n,
            if r.is_finite() {
                format!("{r:.2}")
            } else {
                "inf".into()
            },
        );
    };
    metric(
        "wall ns/work",
        old.ns_per_work(),
        new.ns_per_work(),
        fmt_ns(old.ns_per_work()),
        fmt_ns(new.ns_per_work()),
    );
    metric(
        "alloc bytes/work",
        old.alloc_per_work(),
        new.alloc_per_work(),
        fmt_bytes(old.alloc_per_work()),
        fmt_bytes(new.alloc_per_work()),
    );
    metric(
        "peak rss",
        old.peak_rss_kb as f64,
        new.peak_rss_kb as f64,
        fmt_bytes(old.peak_rss_kb as f64 * 1024.0),
        fmt_bytes(new.peak_rss_kb as f64 * 1024.0),
    );
    // Per-stage wall deltas for stages both runs saw (informational —
    // stage mixes shift run to run; the normalized totals gate).
    for (name, o_ns) in &old.stages {
        if let Some((_, n_ns)) = new.stages.iter().find(|(n, _)| n == name) {
            let r = ratio(*o_ns as f64, *n_ns as f64);
            if r >= band || r <= 1.0 / band {
                let _ = writeln!(
                    out,
                    "  stage {:<26} {:>12} → {:>12}  ({r:.2}×)",
                    name,
                    fmt_ns(*o_ns as f64),
                    fmt_ns(*n_ns as f64),
                );
            }
        }
    }
    (out, flagged)
}

/// Walk every consecutive pair of records; returns the report and
/// whether any pair regressed past `band`.
pub fn regressions(records: &[RunRecord], band: f64) -> (String, bool) {
    let mut out = String::new();
    let mut any = false;
    for pair in records.windows(2) {
        let (text, flagged) = diff(&pair[0], &pair[1], band);
        if flagged {
            any = true;
            out.push_str(&text);
        }
    }
    if !any {
        out.push_str(&format!(
            "history regressions: {} run(s), no pairwise regression past {band:.2}×\n",
            records.len()
        ));
    }
    (out, any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_rt::durable::{arm_crash, disarm_crash, reset_points, CrashMode, CrashSpec};
    use std::sync::Mutex;

    /// Crash-injection state is process-global; serialize the tests
    /// that arm it.
    static CRASH_LOCK: Mutex<()> = Mutex::new(());

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pc-history-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rec(work: u64, wall_ns: u64, alloc: u64) -> RunRecord {
        RunRecord {
            kind: "fuzz".into(),
            label: "seq2/BeeGFS".into(),
            work,
            wall_ns,
            stages: vec![
                ("snapshot.materialize".into(), wall_ns / 2),
                ("recover/BeeGFS".into(), wall_ns / 4),
            ],
            alloc_bytes: alloc,
            alloc_peak: alloc / 2,
            peak_rss_kb: 10_000,
        }
    }

    #[test]
    fn record_json_round_trips() {
        let r = rec(500, 2_000_000_000, 64 << 20);
        let back = RunRecord::parse(&r.to_json().pretty()).unwrap();
        assert_eq!(back, r);
        // Older / foreign payloads degrade to zeros, not errors.
        let sparse = RunRecord::parse(r#"{"kind": "fuzz"}"#).unwrap();
        assert_eq!(sparse.kind, "fuzz");
        assert_eq!(sparse.work, 0);
        assert!(RunRecord::parse("not json").is_err());
    }

    #[test]
    fn diff_flags_a_2x_slowdown_inside_the_band() {
        let old = rec(500, 1_000_000_000, 64 << 20);
        let new = rec(500, 2_000_000_000, 64 << 20); // 2× wall, same work
        let (text, flagged) = diff(&old, &new, 1.5);
        assert!(flagged, "2× ns/work must flag at band 1.5:\n{text}");
        assert!(text.contains("REGRESSION"), "{text}");
        let (text, flagged) = diff(&old, &new, 4.0);
        assert!(!flagged, "2× must pass a 4× band:\n{text}");
        // Different kinds render but never flag.
        let mut campaign = new.clone();
        campaign.kind = "campaign".into();
        let (_, flagged) = diff(&old, &campaign, 1.5);
        assert!(!flagged);
    }

    #[test]
    fn regressions_walk_consecutive_pairs() {
        let runs = vec![
            rec(500, 1_000_000_000, 64 << 20),
            rec(500, 1_050_000_000, 64 << 20),
            rec(500, 3_000_000_000, 64 << 20),
        ];
        let (text, any) = regressions(&runs, 1.5);
        assert!(any, "{text}");
        let (text, any) = regressions(&runs[..2], 1.5);
        assert!(!any, "{text}");
    }

    #[test]
    fn append_load_round_trips_and_show_renders() {
        let dir = scratch("append");
        let a = rec(500, 1_000_000_000, 64 << 20);
        let b = rec(600, 1_100_000_000, 70 << 20);
        append(&dir, &a).unwrap();
        append(&dir, &b).unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded, vec![a, b]);
        let table = render_show(&loaded);
        assert!(table.contains("seq2/BeeGFS"), "{table}");
        assert!(table.contains("fuzz"), "{table}");
        assert_eq!(load(&scratch("missing")).unwrap(), Vec::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn history_log_survives_a_torn_tail_crash() {
        let _g = CRASH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = scratch("torn");
        append(&dir, &rec(500, 1_000_000_000, 64 << 20)).unwrap();
        append(&dir, &rec(500, 1_010_000_000, 64 << 20)).unwrap();
        // Arm a crash that tears 9 bytes into the third append's framed
        // record (open is not a durability point on an existing log).
        reset_points();
        arm_crash(CrashSpec {
            at: 1,
            tear: Some(9),
            mode: CrashMode::Panic,
        });
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            append(&dir, &rec(500, 5_000_000_000, 64 << 20)).unwrap();
        }));
        disarm_crash();
        reset_points();
        assert!(crashed.is_err(), "armed crash must unwind");
        // The torn tail truncates away; the two committed records load,
        // and the log accepts appends again.
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.len(), 2, "torn third record must be cut");
        assert_eq!(loaded[1].wall_ns, 1_010_000_000);
        append(&dir, &rec(500, 1_020_000_000, 64 << 20)).unwrap();
        assert_eq!(load(&dir).unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
