//! `paracrash report` — a self-contained HTML dashboard for a campaign.
//!
//! The renderer is the read side of the observability plane: it takes
//! the artifacts a run leaves behind — a `--events-out` JSON-lines
//! stream, an optional `--telemetry-out` snapshot, any committed
//! `BENCH_*.json` suites — parses them with the vendored
//! `h5sim::json` reader (zero dependencies, like everything else in the
//! workspace), and emits **one** HTML file with inline CSS and inline
//! SVG: no scripts, no external fonts, no network. Open it from disk,
//! attach it to a bug report, archive it next to the corpus.
//!
//! Sections, in reading order:
//!
//! * **stat tiles** — cells checked, distinct findings, behavior
//!   classes, coverage saturation, throughput;
//! * **coverage curve** — behavior classes and findings discovered as a
//!   function of cells checked (the "is discovery still growing?"
//!   picture both Pathfinder-style dedup and B3-style bounded fuzzing
//!   steer by), with a plain-table fallback view;
//! * **stage-time breakdown** — total wall time per telemetry span
//!   name, from the snapshot when given, else re-aggregated from the
//!   stream's `span_close` events;
//! * **finding heatmap** — findings per file system × journal mode, a
//!   table shaded on a single-hue sequential ramp;
//! * **flame view** — a no-script SVG icicle of a `--profile-out`
//!   `.folded` profile (self-time by span stack); runs with fewer than
//!   two samples degrade to a sorted stack table instead of a
//!   misleading one-bar graphic;
//! * **allocation attribution** — per-span alloc count / bytes / peak
//!   tiles and table from the counting allocator, when the telemetry
//!   snapshot carries an `alloc` object;
//! * **bench suites** — median-latency rows for any `BENCH_*.json`
//!   passed in.
//!
//! Every metric element carries a `data-metric` attribute; verify
//! gate 12 lints the rendered file for the full set plus a non-empty
//! SVG, so a dashboard that silently lost a section fails CI.

use h5sim::json::Json;

use crate::telemetry::parse_event_stream;

/// One parsed `cell` event: the campaign's per-cell fold state.
struct CellPoint {
    behaviors: u64,
    findings: u64,
    wall_ns: u64,
}

/// Pull `key=value` out of an event detail string.
fn detail_field(detail: &str, key: &str) -> Option<u64> {
    detail.split_whitespace().find_map(|tok| {
        tok.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
            .and_then(|v| v.parse().ok())
    })
}

/// Escape text for an HTML/SVG text node or attribute value.
fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Render the dashboard. `events_text` is the raw `--events-out`
/// JSON-lines stream (validated here; a bad stream is an error, not an
/// empty chart). `telemetry` is a parsed `--telemetry-out` plain-JSON
/// snapshot, if one exists. `benches` are `(file name, parsed JSON)`
/// pairs for any `BENCH_*.json` suites to tabulate. `profile` is the
/// text of a `--profile-out` `.folded` file for the flame view (a
/// malformed profile is an error, matching the stream).
pub fn render_dashboard(
    events_text: &str,
    telemetry: Option<&Json>,
    benches: &[(String, Json)],
    profile: Option<&str>,
) -> Result<String, String> {
    let events = parse_event_stream(events_text)?;

    // -- Aggregate the stream -------------------------------------------------
    let mut cells: Vec<(String, CellPoint)> = Vec::new();
    let mut heat: Vec<(String, String, u64)> = Vec::new(); // fs, journal, findings
    let mut first_ts = u64::MAX;
    let mut last_ts = 0u64;
    let mut span_totals: Vec<(String, u64, u64)> = Vec::new(); // name, total, calls
    let mut campaign_counters: Vec<(String, u64)> = Vec::new(); // campaign.* sums
    for e in &events {
        let kind = e.get("kind").and_then(Json::as_str).unwrap_or("");
        let name = e.get("name").and_then(Json::as_str).unwrap_or("");
        let detail = e.get("detail").and_then(Json::as_str).unwrap_or("");
        let value = e.get("value").and_then(Json::as_int).unwrap_or(0);
        let ts = e.get("ts_ns").and_then(Json::as_int).unwrap_or(0);
        first_ts = first_ts.min(ts);
        last_ts = last_ts.max(ts);
        match kind {
            "cell" => cells.push((
                name.to_string(),
                CellPoint {
                    behaviors: detail_field(detail, "behaviors").unwrap_or(0),
                    findings: detail_field(detail, "findings").unwrap_or(0),
                    wall_ns: value,
                },
            )),
            "finding" => {
                let (fs, journal) = name.split_once('/').unwrap_or((name, "?"));
                match heat.iter_mut().find(|(f, j, _)| f == fs && j == journal) {
                    Some((_, _, n)) => *n += 1,
                    None => heat.push((fs.to_string(), journal.to_string(), 1)),
                }
            }
            "span_close" => match span_totals.iter_mut().find(|(n, ..)| n == name) {
                Some((_, total, calls)) => {
                    *total += value;
                    *calls += 1;
                }
                None => span_totals.push((name.to_string(), value, 1)),
            },
            // Campaign robustness counters (resumed cells, retries,
            // quarantines) are deltas: sum them per name.
            "counter" if name.starts_with("campaign.") => {
                match campaign_counters.iter_mut().find(|(n, _)| n == name) {
                    Some((_, total)) => *total += value,
                    None => campaign_counters.push((name.to_string(), value)),
                }
            }
            _ => {}
        }
    }

    // Prefer the exit snapshot for stage times: it sees every span, not
    // just the window the bounded ring kept.
    if let Some(spans) = telemetry
        .and_then(|t| t.get("spans"))
        .and_then(Json::as_arr)
    {
        span_totals.clear();
        for s in spans {
            let name = s.get("name").and_then(Json::as_str).unwrap_or("");
            let dur = s.get("dur_ns").and_then(Json::as_int).unwrap_or(0);
            match span_totals.iter_mut().find(|(n, ..)| n == name) {
                Some((_, total, calls)) => {
                    *total += dur;
                    *calls += 1;
                }
                None => span_totals.push((name.to_string(), dur, 1)),
            }
        }
    }
    span_totals.sort_by_key(|&(_, total, _)| std::cmp::Reverse(total));
    span_totals.truncate(12);

    let n_cells = cells.len();
    let behaviors = cells.last().map_or(0, |(_, c)| c.behaviors);
    let findings = cells.last().map_or(0, |(_, c)| c.findings);
    // Saturation from the last snapshot event when present (the driver
    // computes Good–Turing over the whole corpus), else from the curve.
    let saturation = events
        .iter()
        .rev()
        .find(|e| e.get("kind").and_then(Json::as_str) == Some("snapshot"))
        .and_then(|e| {
            detail_field(
                e.get("detail").and_then(Json::as_str).unwrap_or(""),
                "saturation_pct",
            )
        });
    let wall_ns = last_ts.saturating_sub(if first_ts == u64::MAX { 0 } else { first_ts });
    let throughput = if wall_ns > 0 && n_cells > 0 {
        n_cells as f64 / (wall_ns as f64 / 1e9)
    } else {
        0.0
    };

    // -- Assemble the page ----------------------------------------------------
    let mut b = String::with_capacity(32 * 1024);
    b.push_str(HEAD);

    b.push_str("<main class=\"viz-root\">\n<h1>ParaCrash campaign report</h1>\n");
    b.push_str(&format!(
        "<p class=\"sub\">{} events · wall {}</p>\n",
        events.len(),
        fmt_ns(wall_ns as f64),
    ));

    // Stat tiles.
    b.push_str("<section class=\"tiles\">\n");
    let sat_text = saturation.map_or("–".to_string(), |s| format!("{s}%"));
    for (metric, label, value) in [
        ("cells", "cells checked", n_cells.to_string()),
        ("findings", "distinct findings", findings.to_string()),
        ("behaviors", "behavior classes", behaviors.to_string()),
        ("saturation", "coverage saturation", sat_text),
        ("throughput", "cells / s", format!("{throughput:.1}")),
    ] {
        b.push_str(&format!(
            "<div class=\"tile\" data-metric=\"{metric}\"><div class=\"tile-value\">{value}</div><div class=\"tile-label\">{label}</div></div>\n",
        ));
    }
    b.push_str("</section>\n");

    render_campaign_robustness(&mut b, &campaign_counters);
    render_coverage_curve(&mut b, &cells);
    render_stage_breakdown(&mut b, &span_totals);
    render_heatmap(&mut b, &heat);
    if let Some(folded) = profile {
        render_flame(&mut b, folded)?;
    }
    render_alloc(&mut b, telemetry);
    render_benches(&mut b, benches);

    b.push_str("</main>\n</body>\n</html>\n");
    Ok(b)
}

/// Campaign robustness tiles — rendered only when the stream carries
/// `campaign.*` counters (a `paracrash campaign` run): cells recovered
/// from the durable log, watchdog retries, and quarantined cells. A
/// plain `fuzz` run has none, and the section is omitted entirely.
fn render_campaign_robustness(b: &mut String, counters: &[(String, u64)]) {
    if counters.is_empty() {
        return;
    }
    let sum = |name: &str| -> u64 {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    b.push_str("<section data-metric=\"campaign-robustness\">\n<h2>Campaign robustness</h2>\n");
    b.push_str("<div class=\"tiles\">\n");
    for (metric, label, value) in [
        (
            "resumed-cells",
            "cells resumed from log",
            sum("campaign.resumed_cells"),
        ),
        ("retries", "watchdog retries", sum("campaign.retries")),
        (
            "quarantined",
            "quarantined cells",
            sum("campaign.quarantined"),
        ),
    ] {
        b.push_str(&format!(
            "<div class=\"tile\" data-metric=\"{metric}\"><div class=\"tile-value\">{value}</div><div class=\"tile-label\">{label}</div></div>\n",
        ));
    }
    b.push_str("</div>\n</section>\n");
}

/// Coverage curve: behavior classes (series 1) and findings (series 2)
/// against cells checked, plus the table fallback view.
fn render_coverage_curve(b: &mut String, cells: &[(String, CellPoint)]) {
    b.push_str("<section data-metric=\"coverage-curve\">\n<h2>Coverage curve</h2>\n");
    if cells.is_empty() {
        b.push_str("<p class=\"sub\">no cell events in the stream</p>\n</section>\n");
        return;
    }
    const W: f64 = 640.0;
    const H: f64 = 220.0;
    const ML: f64 = 44.0; // left margin for y labels
    const MB: f64 = 28.0;
    const MT: f64 = 10.0;
    let n = cells.len();
    let ymax = cells
        .iter()
        .map(|(_, c)| c.behaviors.max(c.findings))
        .max()
        .unwrap_or(1)
        .max(1);
    let x = |i: usize| ML + (W - ML - 8.0) * (i as f64 / (n.max(2) - 1) as f64);
    let y = |v: u64| H - MB - (H - MB - MT) * (v as f64 / ymax as f64);
    let poly = |f: &dyn Fn(&CellPoint) -> u64| {
        cells
            .iter()
            .enumerate()
            .map(|(i, (_, c))| format!("{:.1},{:.1}", x(i), y(f(c))))
            .collect::<Vec<_>>()
            .join(" ")
    };
    b.push_str(&format!(
        "<svg viewBox=\"0 0 {W} {H}\" role=\"img\" aria-label=\"behavior classes and findings vs cells checked\">\n"
    ));
    // Baseline + y gridline at max, muted.
    b.push_str(&format!(
        "<line class=\"axis\" x1=\"{ML}\" y1=\"{0:.1}\" x2=\"{1}\" y2=\"{0:.1}\"/>\n",
        H - MB,
        W - 8.0
    ));
    b.push_str(&format!(
        "<line class=\"grid\" x1=\"{ML}\" y1=\"{0:.1}\" x2=\"{1}\" y2=\"{0:.1}\"/>\n",
        y(ymax),
        W - 8.0
    ));
    b.push_str(&format!(
        "<text class=\"lbl\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
        ML - 6.0,
        y(ymax) + 4.0,
        ymax
    ));
    b.push_str(&format!(
        "<text class=\"lbl\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">0</text>\n",
        ML - 6.0,
        H - MB + 4.0
    ));
    b.push_str(&format!(
        "<text class=\"lbl\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">cells → {n}</text>\n",
        (ML + W) / 2.0,
        H - 8.0
    ));
    b.push_str(&format!(
        "<polyline class=\"s1\" points=\"{}\"><title>behavior classes</title></polyline>\n",
        poly(&|c| c.behaviors)
    ));
    b.push_str(&format!(
        "<polyline class=\"s2\" points=\"{}\"><title>findings</title></polyline>\n",
        poly(&|c| c.findings)
    ));
    // Direct labels at the line ends (identity never rides color alone).
    let last = &cells[n - 1].1;
    b.push_str(&format!(
        "<text class=\"lbl s1t\" x=\"{:.1}\" y=\"{:.1}\">behaviors {}</text>\n",
        x(n - 1) - 4.0,
        y(last.behaviors) - 6.0,
        last.behaviors
    ));
    b.push_str(&format!(
        "<text class=\"lbl s2t\" x=\"{:.1}\" y=\"{:.1}\">findings {}</text>\n",
        x(n - 1) - 4.0,
        y(last.findings) + 14.0,
        last.findings
    ));
    b.push_str("</svg>\n");
    b.push_str(
        "<p class=\"legend\"><span class=\"swatch sw1\"></span>behavior classes\
         <span class=\"swatch sw2\"></span>findings</p>\n",
    );

    // Table fallback: every cell row, capped sensibly for huge runs.
    b.push_str(
        "<details><summary>table view</summary><table data-metric=\"coverage-table\">\
        <tr><th>#</th><th>cell</th><th>behaviors</th><th>findings</th><th>wall</th></tr>\n",
    );
    let step = (n / 200).max(1);
    for (i, (name, c)) in cells.iter().enumerate() {
        if i % step != 0 && i != n - 1 {
            continue;
        }
        b.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            i + 1,
            html_escape(name),
            c.behaviors,
            c.findings,
            fmt_ns(c.wall_ns as f64),
        ));
    }
    b.push_str("</table></details>\n</section>\n");
}

/// Stage-time breakdown: horizontal bars, one per span name.
fn render_stage_breakdown(b: &mut String, span_totals: &[(String, u64, u64)]) {
    b.push_str("<section data-metric=\"stage-breakdown\">\n<h2>Stage time</h2>\n");
    if span_totals.is_empty() {
        b.push_str("<p class=\"sub\">no span data (run with PC_TRACE=1 or --telemetry-out)</p>\n</section>\n");
        return;
    }
    const W: f64 = 640.0;
    const ROW: f64 = 24.0;
    const ML: f64 = 190.0;
    let h = ROW * span_totals.len() as f64 + 8.0;
    let max = span_totals
        .iter()
        .map(|&(_, t, _)| t)
        .max()
        .unwrap_or(1)
        .max(1);
    b.push_str(&format!(
        "<svg viewBox=\"0 0 {W} {h:.0}\" role=\"img\" aria-label=\"total wall time per stage\">\n"
    ));
    for (i, (name, total, calls)) in span_totals.iter().enumerate() {
        let yy = 4.0 + ROW * i as f64;
        let ww = (W - ML - 110.0) * (*total as f64 / max as f64);
        b.push_str(&format!(
            "<text class=\"lbl\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
            ML - 8.0,
            yy + 15.0,
            html_escape(name)
        ));
        b.push_str(&format!(
            "<rect class=\"bar\" x=\"{ML}\" y=\"{yy:.1}\" width=\"{:.1}\" height=\"16\" rx=\"4\"><title>{} over {} calls</title></rect>\n",
            ww.max(1.5),
            fmt_ns(*total as f64),
            calls
        ));
        b.push_str(&format!(
            "<text class=\"lbl\" x=\"{:.1}\" y=\"{:.1}\">{} · {} calls</text>\n",
            ML + ww.max(1.5) + 8.0,
            yy + 15.0,
            fmt_ns(*total as f64),
            calls
        ));
    }
    b.push_str("</svg>\n</section>\n");
}

/// Finding heatmap: file system × journal mode, shaded table.
fn render_heatmap(b: &mut String, heat: &[(String, String, u64)]) {
    b.push_str(
        "<section data-metric=\"heatmap\">\n<h2>Findings by file system × journal mode</h2>\n",
    );
    if heat.is_empty() {
        b.push_str("<p class=\"sub\">no findings in this run</p>\n</section>\n");
        return;
    }
    let mut fss: Vec<&str> = heat.iter().map(|(f, ..)| f.as_str()).collect();
    fss.sort();
    fss.dedup();
    let mut modes: Vec<&str> = heat.iter().map(|(_, j, _)| j.as_str()).collect();
    modes.sort();
    modes.dedup();
    let max = heat.iter().map(|&(.., n)| n).max().unwrap_or(1).max(1);
    b.push_str("<table class=\"heat\"><tr><th></th>");
    for m in &modes {
        b.push_str(&format!("<th>{}</th>", html_escape(m)));
    }
    b.push_str("</tr>\n");
    for fs in &fss {
        b.push_str(&format!("<tr><th>{}</th>", html_escape(fs)));
        for m in &modes {
            let n = heat
                .iter()
                .find(|(f, j, _)| f == fs && j == m)
                .map_or(0, |&(.., n)| n);
            let level = if n == 0 {
                0
            } else {
                (5 * n).div_ceil(max).clamp(1, 5)
            };
            b.push_str(&format!(
                "<td class=\"heat-{level}\" title=\"{fs} × {m}: {n} findings\">{n}</td>",
                fs = html_escape(fs),
                m = html_escape(m),
            ));
        }
        b.push_str("</tr>\n");
    }
    b.push_str("</table>\n</section>\n");
}

/// One node of the flame tree built from folded stacks: inclusive
/// sample weight, children keyed (and sorted) by frame name.
struct FlameNode {
    name: String,
    count: u64,
    children: Vec<FlameNode>,
}

impl FlameNode {
    fn child(&mut self, name: &str) -> &mut FlameNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        let at = self
            .children
            .iter()
            .position(|c| c.name.as_str() > name)
            .unwrap_or(self.children.len());
        self.children.insert(
            at,
            FlameNode {
                name: name.to_string(),
                count: 0,
                children: Vec::new(),
            },
        );
        &mut self.children[at]
    }

    fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(FlameNode::depth)
            .max()
            .unwrap_or(0)
    }
}

/// Flame view of a `--profile-out` `.folded` profile: a no-script SVG
/// icicle (root at the top, children sorted by name so the layout is
/// deterministic). With fewer than two samples a one-bar icicle is
/// noise, so the section degrades to the sorted stack table alone.
fn render_flame(b: &mut String, folded: &str) -> Result<(), String> {
    let rows = pc_rt::obs::prof::parse_folded(folded)?;
    b.push_str("<section data-metric=\"flame\">\n<h2>Span-stack profile</h2>\n");
    if rows.is_empty() {
        b.push_str("<p class=\"sub\">no samples in the profile</p>\n</section>\n");
        return Ok(());
    }
    let total: u64 = rows.iter().map(|(_, c)| c).sum();
    let mut root = FlameNode {
        name: String::new(),
        count: total,
        children: Vec::new(),
    };
    for (frames, count) in &rows {
        let mut node = &mut root;
        for f in frames {
            node = node.child(f);
            node.count += count;
        }
    }

    if total >= 2 {
        const W: f64 = 640.0;
        const ROW: f64 = 22.0;
        let h = ROW * (root.depth() - 1).max(1) as f64 + 4.0;
        b.push_str(&format!(
            "<svg viewBox=\"0 0 {W} {h:.0}\" role=\"img\" aria-label=\"sampled span stacks, width proportional to samples\">\n"
        ));
        // Iterative pre-order walk carrying (node index path) is more
        // code than it saves; span stacks are ≤32 deep, so recurse.
        fn emit(b: &mut String, node: &FlameNode, x: f64, w: f64, depth: usize, total: u64) {
            let yy = 2.0 + 22.0 * depth as f64;
            let pct = 100.0 * node.count as f64 / total.max(1) as f64;
            b.push_str(&format!(
                "<rect class=\"flame flame-d{}\" x=\"{x:.1}\" y=\"{yy:.1}\" width=\"{:.1}\" height=\"20\" rx=\"2\"><title>{}: {} samples ({pct:.1}%)</title></rect>\n",
                depth % 4,
                w.max(1.0),
                html_escape(&node.name),
                node.count,
            ));
            if w >= 60.0 {
                b.push_str(&format!(
                    "<text class=\"lbl flame-lbl\" x=\"{:.1}\" y=\"{:.1}\">{}</text>\n",
                    x + 4.0,
                    yy + 14.0,
                    html_escape(&node.name),
                ));
            }
            let mut cx = x;
            for c in &node.children {
                let cw = w * c.count as f64 / node.count.max(1) as f64;
                emit(b, c, cx, cw, depth + 1, total);
                cx += cw;
            }
        }
        let mut cx = 0.0;
        for c in &root.children {
            let cw = W * c.count as f64 / total.max(1) as f64;
            emit(b, c, cx, cw, 0, total);
            cx += cw;
        }
        b.push_str("</svg>\n");
    } else {
        b.push_str(&format!(
            "<p class=\"sub\">{total} sample(s) — too few for a flame graph; stacks listed instead</p>\n"
        ));
    }

    // The table view renders always: it is the degraded form for
    // near-empty profiles and the copy-pasteable form for full ones.
    let mut sorted: Vec<&(Vec<String>, u64)> = rows.iter().collect();
    sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    b.push_str(
        "<details><summary>stack table</summary><table data-metric=\"flame-table\">\
         <tr><th>stack</th><th>samples</th><th>share</th></tr>\n",
    );
    for (frames, count) in sorted.iter().take(40) {
        b.push_str(&format!(
            "<tr><td>{}</td><td>{count}</td><td>{:.1}%</td></tr>\n",
            html_escape(&frames.join(";")),
            100.0 * *count as f64 / total.max(1) as f64,
        ));
    }
    b.push_str("</table></details>\n</section>\n");
    Ok(())
}

/// Allocation attribution from the telemetry snapshot's `alloc` object:
/// total tiles plus a per-span table, bytes-descending. Omitted
/// entirely (like campaign robustness) when the snapshot is absent or
/// accounting never recorded anything.
fn render_alloc(b: &mut String, telemetry: Option<&Json>) {
    let Some(alloc) = telemetry.and_then(|t| t.get("alloc")) else {
        return;
    };
    let stat = |j: &Json, k: &str| j.get(k).and_then(Json::as_int).unwrap_or(0);
    let Some(total) = alloc.get("total") else {
        return;
    };
    if stat(total, "count") == 0 {
        return;
    }
    let fmt_b = |v: u64| pc_rt::obs::prof::fmt_bytes(v as f64);
    b.push_str("<section data-metric=\"alloc\">\n<h2>Allocation attribution</h2>\n");
    b.push_str("<div class=\"tiles\">\n");
    for (metric, label, value) in [
        (
            "alloc-count",
            "allocations",
            stat(total, "count").to_string(),
        ),
        (
            "alloc-bytes",
            "bytes allocated",
            fmt_b(stat(total, "bytes")),
        ),
        (
            "alloc-peak",
            "peak live bytes",
            fmt_b(stat(total, "peak_bytes")),
        ),
    ] {
        b.push_str(&format!(
            "<div class=\"tile\" data-metric=\"{metric}\"><div class=\"tile-value\">{value}</div><div class=\"tile-label\">{label}</div></div>\n",
        ));
    }
    b.push_str("</div>\n");
    if let Some(Json::Obj(spans)) = alloc.get("spans") {
        if !spans.is_empty() {
            let mut rows: Vec<(&String, &Json)> = spans.iter().map(|(k, v)| (k, v)).collect();
            rows.sort_by(|a, b| {
                stat(b.1, "bytes")
                    .cmp(&stat(a.1, "bytes"))
                    .then(a.0.cmp(b.0))
            });
            b.push_str(
                "<table data-metric=\"alloc-table\">\
                 <tr><th>span</th><th>count</th><th>bytes</th><th>peak</th></tr>\n",
            );
            for (name, s) in rows.iter().take(16) {
                b.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                    html_escape(name),
                    stat(s, "count"),
                    fmt_b(stat(s, "bytes")),
                    fmt_b(stat(s, "peak_bytes")),
                ));
            }
            b.push_str("</table>\n");
        }
    }
    b.push_str("</section>\n");
}

/// Bench suites: median latency per bench, one table per file.
fn render_benches(b: &mut String, benches: &[(String, Json)]) {
    if benches.is_empty() {
        return;
    }
    b.push_str("<section data-metric=\"benches\">\n<h2>Bench suites</h2>\n");
    for (file, j) in benches {
        b.push_str(&format!("<h3>{}</h3>\n", html_escape(file)));
        let Some(rows) = j.as_arr() else {
            b.push_str("<p class=\"sub\">not a bench array</p>\n");
            continue;
        };
        b.push_str("<table><tr><th>bench</th><th>iters</th><th>median</th><th>p95</th></tr>\n");
        for r in rows {
            b.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                html_escape(r.get("name").and_then(Json::as_str).unwrap_or("?")),
                r.get("iters").and_then(Json::as_int).unwrap_or(0),
                fmt_ns(r.get("median_ns").and_then(Json::as_int).unwrap_or(0) as f64),
                fmt_ns(r.get("p95_ns").and_then(Json::as_int).unwrap_or(0) as f64),
            ));
        }
        b.push_str("</table>\n");
    }
    b.push_str("</section>\n");
}

/// Document head: inline CSS only. Light/dark palettes are the
/// validated reference palette (series 1 blue, series 2 orange, a
/// single-hue sequential blue ramp for the heatmap); dark mode is its
/// own stepped set, not an automatic flip, and follows the OS setting.
const HEAD: &str = r##"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>ParaCrash campaign report</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --heat-1: #cde2fb; --heat-2: #9ec5f4; --heat-3: #5598e7;
  --heat-4: #256abf; --heat-5: #0d366b;
  --heat-hi-ink: #ffffff;
  --flame-1: #eb6834; --flame-2: #f2924e; --flame-3: #d95926;
  --flame-4: #f8b878;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --series-2: #d95926;
    --heat-1: #184f95; --heat-2: #256abf; --heat-3: #3987e5;
    --heat-4: #6da7ec; --heat-5: #b7d3f6;
    --heat-hi-ink: #0b0b0b;
    --flame-1: #b24a1e; --flame-2: #c96a31; --flame-3: #9c3c15;
    --flame-4: #d98b4f;
  }
}
body { margin: 0; background: var(--page); }
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--text-primary);
  background: var(--page);
  max-width: 720px; margin: 0 auto; padding: 24px 16px 48px;
}
h1 { font-size: 22px; margin: 0 0 2px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
h3 { font-size: 13px; margin: 14px 0 6px; color: var(--text-secondary); }
.sub { color: var(--text-secondary); font-size: 12px; margin: 0 0 12px; }
section { background: var(--surface-1); border: 1px solid var(--grid);
  border-radius: 8px; padding: 12px 14px; margin: 12px 0; }
.tiles { display: flex; flex-wrap: wrap; gap: 8px; background: none;
  border: none; padding: 0; }
.tile { background: var(--surface-1); border: 1px solid var(--grid);
  border-radius: 8px; padding: 10px 14px; flex: 1 1 110px; }
.tile-value { font-size: 24px; }
.tile-label { font-size: 11px; color: var(--text-secondary); }
svg { width: 100%; height: auto; display: block; }
svg .axis { stroke: var(--baseline); stroke-width: 1; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .lbl { fill: var(--muted); font-size: 11px;
  font-family: system-ui, sans-serif; }
svg .s1 { fill: none; stroke: var(--series-1); stroke-width: 2; }
svg .s2 { fill: none; stroke: var(--series-2); stroke-width: 2; }
svg .s1t { fill: var(--text-secondary); text-anchor: end; }
svg .s2t { fill: var(--text-secondary); text-anchor: end; }
svg .bar { fill: var(--series-1); }
svg .flame { stroke: var(--surface-1); stroke-width: 0.5; }
svg .flame-d0 { fill: var(--flame-1); }
svg .flame-d1 { fill: var(--flame-2); }
svg .flame-d2 { fill: var(--flame-3); }
svg .flame-d3 { fill: var(--flame-4); }
svg .flame-lbl { fill: var(--heat-hi-ink); font-size: 10px; }
.legend { font-size: 12px; color: var(--text-secondary); margin: 6px 0 0; }
.swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin: 0 6px 0 14px; }
.swatch:first-child { margin-left: 0; }
.sw1 { background: var(--series-1); }
.sw2 { background: var(--series-2); }
table { border-collapse: collapse; font-size: 12px;
  font-variant-numeric: tabular-nums; }
th, td { border: 1px solid var(--grid); padding: 4px 8px; text-align: right; }
th { color: var(--text-secondary); font-weight: 500; }
td:first-child, th:first-child { text-align: left; }
details { margin-top: 8px; font-size: 12px; }
summary { color: var(--text-secondary); cursor: pointer; }
.heat td { text-align: center; min-width: 48px; }
.heat-0 { color: var(--muted); }
.heat-1 { background: var(--heat-1); }
.heat-2 { background: var(--heat-2); }
.heat-3 { background: var(--heat-3); }
.heat-4 { background: var(--heat-4); color: var(--heat-hi-ink); }
.heat-5 { background: var(--heat-5); color: var(--heat-hi-ink); }
</style>
</head>
<body>
"##;

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> String {
        let mut s =
            String::from("{\"schema_version\":1,\"stream\":\"paracrash-events\",\"cap\":8192}\n");
        for i in 0..6u64 {
            s.push_str(&format!(
                "{{\"seq\":{},\"ts_ns\":{},\"kind\":\"cell\",\"name\":\"wl{}@OrangeFS/ordered\",\"value\":1500,\"detail\":\"behaviors={} findings={} buggy=0\",\"trace_id\":{}}}\n",
                i * 3,
                1000 + i * 500,
                i,
                i + 1,
                i / 2,
                i + 1,
            ));
        }
        s.push_str(
            "{\"seq\":100,\"ts_ns\":9000,\"kind\":\"finding\",\"name\":\"BeeGFS/writeback\",\"value\":1,\"detail\":\"sig [Pfs]\",\"trace_id\":7}\n",
        );
        s.push_str(
            "{\"seq\":101,\"ts_ns\":9100,\"kind\":\"span_close\",\"name\":\"check.verdicts\",\"value\":120000,\"detail\":\"check\",\"trace_id\":7}\n",
        );
        s.push_str(
            "{\"seq\":102,\"ts_ns\":9200,\"kind\":\"snapshot\",\"name\":\"campaign\",\"value\":6,\"detail\":\"cells=6 saturation_pct=66\",\"trace_id\":0}\n",
        );
        s
    }

    #[test]
    fn dashboard_renders_all_sections() {
        let html = render_dashboard(&stream(), None, &[], None).unwrap();
        for metric in [
            "cells",
            "findings",
            "behaviors",
            "saturation",
            "throughput",
            "coverage-curve",
            "stage-breakdown",
            "heatmap",
        ] {
            assert!(
                html.contains(&format!("data-metric=\"{metric}\"")),
                "missing {metric}"
            );
        }
        assert!(html.contains("<svg"));
        assert!(html.contains("polyline"));
        assert!(html.contains("66%"));
        assert!(html.contains("BeeGFS"));
        // Self-contained: no scripts, no external references.
        assert!(!html.contains("<script"));
        assert!(!html.contains("http://") && !html.contains("https://"));
    }

    #[test]
    fn campaign_counters_render_their_own_tiles() {
        // Plain fuzz stream: no campaign section at all.
        let html = render_dashboard(&stream(), None, &[], None).unwrap();
        assert!(!html.contains("campaign-robustness"));
        // Campaign stream: counter deltas sum into the robustness tiles.
        let mut s = stream();
        for (seq, name, value) in [
            (103, "campaign.resumed_cells", 4),
            (104, "campaign.retries", 2),
            (105, "campaign.retries", 1),
            (106, "campaign.quarantined", 1),
        ] {
            s.push_str(&format!(
                "{{\"seq\":{seq},\"ts_ns\":9300,\"kind\":\"counter\",\"name\":\"{name}\",\
                 \"value\":{value},\"detail\":\"\",\"trace_id\":0}}\n",
            ));
        }
        let html = render_dashboard(&s, None, &[], None).unwrap();
        assert!(html.contains("data-metric=\"campaign-robustness\""));
        for metric in ["resumed-cells", "retries", "quarantined"] {
            assert!(
                html.contains(&format!("data-metric=\"{metric}\"")),
                "{metric}"
            );
        }
        assert!(html.contains(">4<") && html.contains(">3<") && html.contains(">1<"));
    }

    #[test]
    fn dashboard_rejects_bad_stream_and_escapes_names() {
        assert!(render_dashboard("{\"schema_version\":9}\n", None, &[], None).is_err());
        let s = stream().replace("wl0@", "a<b>&\\\"c@");
        let html = render_dashboard(&s, None, &[], None).unwrap();
        assert!(html.contains("a&lt;b&gt;&amp;&quot;c@"));
        assert!(!html.contains("a<b>&\"c@"));
    }

    #[test]
    fn dashboard_tabulates_benches_and_prefers_snapshot_spans() {
        let bench = Json::parse(
            "[{\"name\":\"fuzz/check/cell\",\"iters\":10,\"min_ns\":1,\"mean_ns\":3,\"median_ns\":2,\"p95_ns\":4}]",
        )
        .unwrap();
        let telemetry = Json::parse(
            "{\"schema_version\":1,\"spans\":[{\"name\":\"check_stack\",\"cat\":\"check\",\"tid\":1,\"depth\":0,\"start_ns\":0,\"dur_ns\":5000,\"trace_id\":1}]}",
        )
        .unwrap();
        let html = render_dashboard(
            &stream(),
            Some(&telemetry),
            &[("BENCH_fuzz.json".into(), bench)],
            None,
        )
        .unwrap();
        assert!(html.contains("data-metric=\"benches\""));
        assert!(html.contains("fuzz/check/cell"));
        // Snapshot spans replace the stream-derived stage times.
        assert!(html.contains("check_stack"));
        assert!(!html.contains("check.verdicts"));
    }

    #[test]
    fn flame_view_renders_and_degrades_below_two_samples() {
        // A real profile: nested stacks, icicle SVG plus the table.
        let folded = "cli.run;snapshot.materialize 6\ncli.run;recover/BeeGFS 3\ncli.run 1\n";
        let html = render_dashboard(&stream(), None, &[], Some(folded)).unwrap();
        assert!(html.contains("data-metric=\"flame\""));
        assert!(html.contains("class=\"flame flame-d0\""), "{html}");
        assert!(html.contains("class=\"flame flame-d1\""));
        assert!(html.contains("data-metric=\"flame-table\""));
        assert!(html.contains("snapshot.materialize"));
        assert!(
            html.contains("10 samples (100.0%)"),
            "root weight sums children"
        );
        // <2 samples: no flame rects, the stack table carries the section.
        let html = render_dashboard(&stream(), None, &[], Some("cli.run 1\n")).unwrap();
        assert!(html.contains("data-metric=\"flame\""));
        assert!(!html.contains("class=\"flame flame-d0\""));
        assert!(html.contains("data-metric=\"flame-table\""));
        assert!(html.contains("too few for a flame graph"));
        // Empty and absent profiles degrade gracefully; garbage errors.
        let html = render_dashboard(&stream(), None, &[], Some("")).unwrap();
        assert!(html.contains("no samples in the profile"));
        let html = render_dashboard(&stream(), None, &[], None).unwrap();
        assert!(!html.contains("data-metric=\"flame\""));
        assert!(render_dashboard(&stream(), None, &[], Some("bad profile")).is_err());
    }

    #[test]
    fn alloc_tiles_render_from_snapshot_and_respect_dark_mode() {
        let telemetry = Json::parse(
            "{\"schema_version\":1,\"spans\":[],\"alloc\":{\"total\":{\"count\":52,\"bytes\":13096,\"peak_bytes\":7048},\"spans\":{\"check.enumerate\":{\"count\":12,\"bytes\":4096,\"peak_bytes\":2048}}}}",
        )
        .unwrap();
        let html = render_dashboard(&stream(), Some(&telemetry), &[], None).unwrap();
        assert!(html.contains("data-metric=\"alloc\""));
        for metric in ["alloc-count", "alloc-bytes", "alloc-peak", "alloc-table"] {
            assert!(
                html.contains(&format!("data-metric=\"{metric}\"")),
                "{metric}"
            );
        }
        assert!(html.contains("check.enumerate"));
        // No alloc object (old snapshots), or an empty one: no section.
        let bare = Json::parse("{\"schema_version\":1,\"spans\":[]}").unwrap();
        let html = render_dashboard(&stream(), Some(&bare), &[], None).unwrap();
        assert!(!html.contains("data-metric=\"alloc\""));
        let zero = Json::parse(
            "{\"schema_version\":1,\"spans\":[],\"alloc\":{\"total\":{\"count\":0,\"bytes\":0,\"peak_bytes\":0},\"spans\":{}}}",
        )
        .unwrap();
        let html = render_dashboard(&stream(), Some(&zero), &[], None).unwrap();
        assert!(!html.contains("data-metric=\"alloc\""));
        // Dark-mode styling: the flame palette is defined in both the
        // light block and the dark block, like the heat ramp.
        let html = render_dashboard(&stream(), None, &[], None).unwrap();
        assert_eq!(html.matches("--flame-1:").count(), 2, "light + dark");
        assert_eq!(html.matches("--flame-4:").count(), 2);
        assert_eq!(html.matches("prefers-color-scheme: dark").count(), 1);
    }
}
