//! Algorithm 1 — crash-state generation.
//!
//! A *normal state* is a consistent cut of the causality graph restricted
//! to the lowermost-level operations: everything in the cut executed,
//! nothing after it did. A *crash state* drops up to `k` victim updates
//! (plus every update that must persist after them, per Algorithm 2's
//! `persists_before`) from the cut — modelling writes that sat in a
//! volatile cache when the power went out. Updates already committed by
//! a sync operation inside the cut are pinned and cannot be victims.

use crate::persist::PersistAnalysis;
use tracer::{BitSet, CausalityGraph, EventId, Recorder};

/// One crash state: which lowermost updates reached persistent storage.
#[derive(Debug, Clone)]
pub struct CrashState {
    /// The consistent cut (all lowermost events, including syncs).
    pub cut: BitSet,
    /// The victims dropped from the cut.
    pub victims: Vec<EventId>,
    /// The persisted update set (cut updates minus victim closures).
    pub persisted: BitSet,
}

impl CrashState {
    /// Updates in the cut that did *not* persist.
    pub fn unpersisted(&self, pa: &PersistAnalysis) -> Vec<EventId> {
        pa.updates()
            .iter()
            .copied()
            .filter(|&u| self.cut.contains(u) && !self.persisted.contains(u))
            .collect()
    }

    /// Stable key for deduplication.
    pub fn key(&self) -> Vec<u64> {
        let mut k: Vec<u64> = self.persisted.iter().map(|i| i as u64).collect();
        k.push(u64::MAX); // separator: distinguish cut-boundary effects
        k.extend(self.cut.iter().map(|i| i as u64));
        k
    }
}

/// Victim-selection filter used by the pruning modes (§5.3). Returns
/// `false` to skip a victim candidate.
pub type VictimFilter<'f> = dyn Fn(EventId) -> bool + 'f;

/// Enumerate crash states per Algorithm 1.
///
/// `k` is the maximum number of victims (the paper uses `k = 1`; larger
/// values exposed no new bugs, which our tests assert). `victim_filter`
/// lets the semantic pruning skip victim candidates (e.g. dataset data
/// chunks).
pub fn crash_states(
    rec: &Recorder,
    graph: &CausalityGraph,
    pa: &PersistAnalysis,
    k: usize,
    victim_filter: Option<&VictimFilter>,
) -> Vec<CrashState> {
    assert!(k <= 3, "victim counts beyond 3 are not supported");
    let lowermost = rec.lowermost_events();
    let cuts = graph.consistent_cuts(&lowermost);
    let mut out: Vec<CrashState> = Vec::new();
    let mut seen = std::collections::HashSet::new();

    for cut in cuts {
        // Updates available as victims in this cut.
        let cut_updates: Vec<EventId> = pa
            .updates()
            .iter()
            .copied()
            .filter(|&u| cut.contains(u))
            .collect();
        let universe = BitSet::from_iter(rec.len(), cut_updates.iter().copied());
        let candidates: Vec<EventId> = cut_updates
            .iter()
            .copied()
            .filter(|&u| !pa.pinned(rec, graph, u, &cut))
            .filter(|&u| victim_filter.map(|f| f(u)).unwrap_or(true))
            .collect();

        // n = 0 (the normal state itself) … k victims.
        let mut push = |victims: Vec<EventId>, out: &mut Vec<CrashState>| {
            let mut persisted = universe.clone();
            for &v in &victims {
                let deps = pa.depends_on(v, &universe);
                // A victim whose dependency closure includes a pinned
                // update is contradictory: the pinned update is durable,
                // so this crash cannot happen.
                if deps
                    .iter()
                    .any(|d| d != v && pa.pinned(rec, graph, d, &cut) && persisted.contains(d))
                {
                    return;
                }
                persisted.subtract(&deps);
            }
            let state = CrashState {
                cut: cut.clone(),
                victims,
                persisted,
            };
            if seen.insert(state.key()) {
                out.push(state);
            }
        };

        push(Vec::new(), &mut out);
        if k >= 1 {
            for &v in &candidates {
                push(vec![v], &mut out);
            }
        }
        if k >= 2 {
            for (i, &v1) in candidates.iter().enumerate() {
                for &v2 in &candidates[i + 1..] {
                    push(vec![v1, v2], &mut out);
                }
            }
        }
        if k >= 3 {
            for (i, &v1) in candidates.iter().enumerate() {
                for (j, &v2) in candidates.iter().enumerate().skip(i + 1) {
                    for &v3 in &candidates[j + 1..] {
                        push(vec![v1, v2, v3], &mut out);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::{FsOp, JournalMode};
    use tracer::{Layer, Payload, Process};

    /// Two servers, two chained client ops, one lowermost op each.
    fn two_server_trace() -> (Recorder, EventId, EventId) {
        let mut rec = Recorder::new();
        let c1 = rec.record(
            Layer::PfsClient,
            Process::Client(0),
            Payload::Call {
                name: "op1".into(),
                args: vec![],
            },
            None,
        );
        let a = rec.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: FsOp::Creat { path: "/a".into() },
            },
            Some(c1),
        );
        let c2 = rec.record(
            Layer::PfsClient,
            Process::Client(0),
            Payload::Call {
                name: "op2".into(),
                args: vec![],
            },
            None,
        );
        rec.add_edge(a, c2);
        let b = rec.record(
            Layer::LocalFs,
            Process::Server(1),
            Payload::Fs {
                server: 1,
                op: FsOp::Creat { path: "/b".into() },
            },
            Some(c2),
        );
        (rec, a, b)
    }

    #[test]
    fn k0_yields_only_consistent_cuts() {
        let (rec, a, b) = two_server_trace();
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Data));
        let states = crash_states(&rec, &g, &pa, 0, None);
        // Cuts: {}, {a}, {a,b} — b without a is causally impossible.
        assert_eq!(states.len(), 3);
        #[allow(clippy::nonminimal_bool)] // "never b without a" reads as intended
        let never_b_without_a = states
            .iter()
            .all(|s| !(s.persisted.contains(b) && !s.persisted.contains(a)));
        assert!(never_b_without_a);
    }

    #[test]
    fn k1_exposes_cross_server_reordering() {
        let (rec, a, b) = two_server_trace();
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Data));
        let states = crash_states(&rec, &g, &pa, 1, None);
        // The reordered state (b persisted, a dropped) must now exist:
        // victim = a in the full cut; b is on another server, so it is
        // not in a's dependency closure.
        assert!(states
            .iter()
            .any(|s| s.persisted.contains(b) && !s.persisted.contains(a)));
    }

    #[test]
    fn victims_drop_same_server_dependents() {
        let mut rec = Recorder::new();
        let a = rec.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: FsOp::Creat { path: "/a".into() },
            },
            None,
        );
        let b = rec.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: FsOp::Creat { path: "/b".into() },
            },
            None,
        );
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Data));
        let states = crash_states(&rec, &g, &pa, 1, None);
        // Data journaling: dropping a forces dropping b; no state may
        // contain b without a.
        assert!(!states
            .iter()
            .any(|s| s.persisted.contains(b) && !s.persisted.contains(a)));
        // But the state {a} (victim b) exists.
        assert!(states
            .iter()
            .any(|s| s.persisted.contains(a) && !s.persisted.contains(b)));
    }

    #[test]
    fn pinned_updates_cannot_be_victims() {
        let mut rec = Recorder::new();
        let a = rec.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: FsOp::Append {
                    path: "/f".into(),
                    data: vec![1],
                },
            },
            None,
        );
        let s = rec.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: FsOp::Fdatasync { path: "/f".into() },
            },
            Some(a),
        );
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Data));
        let states = crash_states(&rec, &g, &pa, 1, None);
        let _ = s;
        // In every state whose cut contains the fdatasync, `a` persisted.
        for st in &states {
            if st.cut.contains(s) {
                assert!(st.persisted.contains(a), "synced update was dropped");
            }
        }
    }

    #[test]
    fn victim_filter_prunes_candidates() {
        let (rec, a, b) = two_server_trace();
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Data));
        let all = crash_states(&rec, &g, &pa, 1, None);
        let filter = move |e: EventId| e != a;
        let pruned = crash_states(&rec, &g, &pa, 1, Some(&filter));
        assert!(pruned.len() < all.len());
        assert!(!pruned
            .iter()
            .any(|s| s.persisted.contains(b) && !s.persisted.contains(a)));
    }

    #[test]
    fn k2_superset_of_k1() {
        let (rec, _, _) = two_server_trace();
        let g = CausalityGraph::build(&rec);
        let pa = PersistAnalysis::build(&rec, &g, |_| Some(JournalMode::Data));
        let k1 = crash_states(&rec, &g, &pa, 1, None);
        let k2 = crash_states(&rec, &g, &pa, 2, None);
        assert!(k2.len() >= k1.len());
        let keys1: std::collections::HashSet<_> = k1.iter().map(|s| s.key()).collect();
        let keys2: std::collections::HashSet<_> = k2.iter().map(|s| s.key()).collect();
        assert!(keys1.is_subset(&keys2));
    }
}
