//! Crash-consistency models (§4.4.2).
//!
//! A crash-consistency model defines, for the operations that preceded a
//! crash, which *preserved sets* are legal: a recovery is correct iff the
//! storage state equals the result of executing some legal preserved set
//! (in causality order) and nothing else.
//!
//! | model | legal preserved sets |
//! |---|---|
//! | [`Model::Strict`]   | exactly the operations before the crash |
//! | [`Model::Commit`]   | any subset containing every committed operation |
//! | [`Model::Causal`]   | commit, plus closure under happens-before |
//! | [`Model::Baseline`] | any subset containing every update to files/datasets already closed |
//!
//! The paper tests every PFS with the causal model (all five satisfy it
//! in the bug-free case, none satisfies strict) and the I/O libraries
//! with both baseline and causal.

use tracer::{CausalityGraph, EventId};

/// A crash-consistency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// Precise exceptions: everything before the crash persisted.
    Strict,
    /// Committed operations persisted; anything else may be lost.
    Commit,
    /// Commit + causal closure: if an op is preserved, so is everything
    /// that happened before it.
    Causal,
    /// Only updates to closed files are guaranteed.
    Baseline,
}

impl Model {
    /// Parse a configuration-file spelling.
    pub fn parse(s: &str) -> Option<Model> {
        match s {
            "strict" => Some(Model::Strict),
            "commit" => Some(Model::Commit),
            "causal" => Some(Model::Causal),
            "baseline" => Some(Model::Baseline),
            _ => None,
        }
    }

    /// Configuration spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Model::Strict => "strict",
            Model::Commit => "commit",
            Model::Causal => "causal",
            Model::Baseline => "baseline",
        }
    }

    /// `true` if `self` admits every preserved set `other` admits
    /// (weaker-or-equal). Strict ⊑ Causal ⊑ Commit ⊑ Baseline.
    pub fn admits_at_least(&self, other: Model) -> bool {
        fn rank(m: Model) -> u8 {
            match m {
                Model::Strict => 0,
                Model::Causal => 1,
                Model::Commit => 2,
                Model::Baseline => 3,
            }
        }
        rank(*self) >= rank(other)
    }

    /// Enumerate the legal preserved sets of `ops` (layer-level operation
    /// event ids, all of which precede the crash).
    ///
    /// `required` is the model-specific obligation computed by the
    /// caller: the fsync-committed ops for [`Model::Commit`] /
    /// [`Model::Causal`], the closed-file ops for [`Model::Baseline`].
    pub fn preserved_sets(
        &self,
        graph: &CausalityGraph,
        ops: &[EventId],
        required: &[EventId],
    ) -> Vec<Vec<EventId>> {
        match self {
            Model::Strict => vec![ops.to_vec()],
            Model::Causal => graph
                .consistent_cuts(ops)
                .into_iter()
                .filter(|cut| required.iter().all(|&r| cut.contains(r)))
                .map(|cut| ops.iter().copied().filter(|&o| cut.contains(o)).collect())
                .collect(),
            Model::Commit | Model::Baseline => {
                let free: Vec<EventId> = ops
                    .iter()
                    .copied()
                    .filter(|o| !required.contains(o))
                    .collect();
                assert!(
                    free.len() <= 16,
                    "subset enumeration over {} ops is intractable",
                    free.len()
                );
                let mut sets = Vec::with_capacity(1 << free.len());
                for mask in 0u32..(1 << free.len()) {
                    let mut s: Vec<EventId> = required.to_vec();
                    for (i, &o) in free.iter().enumerate() {
                        if mask >> i & 1 == 1 {
                            s.push(o);
                        }
                    }
                    s.sort_unstable();
                    sets.push(s);
                }
                sets
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracer::{Layer, Payload, Process, Recorder};

    /// The Figure 5 execution: P0: write(A); send; write(B) — P1: recv;
    /// write(C); fsync.
    fn figure5() -> (Recorder, CausalityGraph, [EventId; 3], EventId) {
        let mut rec = Recorder::new();
        let (p0, p1) = (Process::Client(0), Process::Client(1));
        let call = |rec: &mut Recorder, p, name: &str| {
            rec.record(
                Layer::PfsClient,
                p,
                Payload::Call {
                    name: name.into(),
                    args: vec![],
                },
                None,
            )
        };
        let wa = call(&mut rec, p0, "write_A");
        let snd = rec.record(
            Layer::PfsClient,
            p0,
            Payload::Send {
                to: p1,
                msg: "buf".into(),
            },
            None,
        );
        let wb = call(&mut rec, p0, "write_B");
        let rcv = rec.record(
            Layer::PfsClient,
            p1,
            Payload::Recv {
                from: p0,
                msg: "buf".into(),
            },
            None,
        );
        rec.add_edge(snd, rcv);
        let wc = call(&mut rec, p1, "write_C");
        let fsync = call(&mut rec, p1, "fsync_C");
        let g = CausalityGraph::build(&rec);
        let _ = wb;
        (rec, g, [wa, wb, wc], fsync)
    }

    #[test]
    fn strict_preserves_everything() {
        let (_, g, [wa, wb, wc], _) = figure5();
        let sets = Model::Strict.preserved_sets(&g, &[wa, wb, wc], &[]);
        assert_eq!(sets, vec![vec![wa, wb, wc]]);
    }

    #[test]
    fn commit_requires_committed_only() {
        // With commit consistency, C (covered by the fsync) is in every
        // preserved set; A and B may each be lost (Figure 5 discussion).
        let (_, g, [wa, wb, wc], _) = figure5();
        let sets = Model::Commit.preserved_sets(&g, &[wa, wb, wc], &[wc]);
        assert_eq!(sets.len(), 4);
        assert!(sets.iter().all(|s| s.contains(&wc)));
        assert!(sets.iter().any(|s| !s.contains(&wa) && !s.contains(&wb)));
        // Commit admits the causally-absurd {C} without {A}.
        assert!(sets.iter().any(|s| s.contains(&wc) && !s.contains(&wa)));
    }

    #[test]
    fn causal_preserves_histories() {
        // Under causal consistency, preserving C forces preserving A
        // (write_A happens-before write_C via send/recv), while B may be
        // lost — the exact Figure 5 example.
        let (_, g, [wa, wb, wc], _) = figure5();
        let sets = Model::Causal.preserved_sets(&g, &[wa, wb, wc], &[wc]);
        assert!(!sets.is_empty());
        for s in &sets {
            assert!(s.contains(&wc));
            assert!(s.contains(&wa), "causal closure violated: {s:?}");
        }
        assert!(sets.iter().any(|s| !s.contains(&wb)));
    }

    #[test]
    fn baseline_allows_losing_everything() {
        let (_, g, [wa, wb, wc], _) = figure5();
        let sets = Model::Baseline.preserved_sets(&g, &[wa, wb, wc], &[]);
        assert_eq!(sets.len(), 8);
        assert!(sets.iter().any(|s| s.is_empty()));
    }

    #[test]
    fn model_lattice() {
        assert!(Model::Baseline.admits_at_least(Model::Strict));
        assert!(Model::Causal.admits_at_least(Model::Strict));
        assert!(Model::Commit.admits_at_least(Model::Causal));
        assert!(!Model::Strict.admits_at_least(Model::Causal));
    }

    #[test]
    fn stronger_models_yield_subset_of_legal_sets() {
        let (_, g, ops3 @ [_, _, wc], _) = figure5();
        let ops = ops3.to_vec();
        let causal: std::collections::HashSet<Vec<EventId>> = Model::Causal
            .preserved_sets(&g, &ops, &[wc])
            .into_iter()
            .collect();
        let commit: std::collections::HashSet<Vec<EventId>> = Model::Commit
            .preserved_sets(&g, &ops, &[wc])
            .into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s
            })
            .collect();
        let causal_sorted: std::collections::HashSet<Vec<EventId>> = causal
            .into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s
            })
            .collect();
        assert!(causal_sorted.is_subset(&commit));
    }

    #[test]
    fn parse_roundtrip() {
        for m in [Model::Strict, Model::Commit, Model::Causal, Model::Baseline] {
            assert_eq!(Model::parse(m.as_str()), Some(m));
        }
        assert_eq!(Model::parse("nope"), None);
    }
}
