//! Prefix-sharing crash-state materialization (the replay engine).
//!
//! Materializing a crash state means applying its persisted storage
//! events, in trace order, to the sealed baseline snapshot. Done naively
//! that costs O(states × trace length) — every state replays its full
//! prefix onto a fresh copy of every server — which is exactly the
//! redundancy the paper's incremental testing (§5.4) targets: sibling
//! crash states differ by a handful of operations.
//!
//! This engine exploits the redundancy *exactly*, not heuristically:
//!
//! 1. every state's persisted set is projected to its storage-event
//!    sequence (ascending event ids — the order replay applies them);
//! 2. the sequences are inserted into a prefix tree, so states sharing
//!    a replay prefix share the tree path that encodes it;
//! 3. a DFS over the tree threads one working snapshot down each chain,
//!    applying each event once per tree *edge* and forking only at
//!    branch nodes and at terminals (where a crash state's materialized
//!    snapshot is handed out).
//!
//! Total replay work is the edge count of the prefix tree instead of the
//! sum of sequence lengths, the fork count is linear in the tree size,
//! and every fork is an O(1) [`ServerStates::fork`]
//! (the COW snapshots introduced in `simfs`). Because each state still
//! ends up with *its exact persisted sequence applied in the exact same
//! order*, the materialized states — and therefore all verdicts, bug
//! reports, state counts and simulated costs — are bit-identical to the
//! naive engine's. The naive engine stays available behind
//! `PC_NAIVE_SNAPSHOTS=1` as a cross-check oracle (see
//! `tests/snapshot_equivalence.rs`).

use crate::emulate::CrashState;
use pfs::ServerStates;
use tracer::{EventId, Payload, Recorder};

/// `true` when the `PC_NAIVE_SNAPSHOTS=1` oracle engine is selected:
/// every crash state deep-clones the baseline and replays its full
/// persisted prefix, reproducing the historical clone-everything cost.
pub fn naive_snapshots() -> bool {
    std::env::var("PC_NAIVE_SNAPSHOTS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// `true` when the `PC_NAIVE_BATCH=1` oracle is selected: the checker
/// runs recovery and mounting for every crash state individually
/// instead of sharing one recovered view across all the states of a
/// prefix-tree subtree with identical storage sequences. Both engines
/// recover the same prepared snapshots, so their verdicts are
/// bit-identical (asserted by `tests/snapshot_equivalence.rs`).
pub fn naive_batch() -> bool {
    std::env::var("PC_NAIVE_BATCH")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Accounting of one prefix-sharing materialization pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// COW forks taken (one per terminal plus branch-node fan-out).
    pub forks: usize,
    /// Storage events actually applied — the prefix-tree edge count,
    /// versus the sum of sequence lengths a naive engine replays.
    pub ops_replayed: usize,
    /// Sum of sequence lengths (what the naive engine would replay).
    pub naive_ops: usize,
}

/// Pre-materialized pre-crash states, one COW fork per crash state, in
/// crash-state order. Workers fork their entry again (O(1)) before
/// running recovery, so the plan itself stays immutable and shareable.
#[derive(Debug)]
pub struct SnapshotPlan {
    /// `prepared[i]` is crash state `i` materialized (persisted events
    /// applied, recovery not yet run).
    pub prepared: Vec<ServerStates>,
    /// Subtree representative: the first crash state (in input order)
    /// whose storage-event sequence lands on the same prefix-tree
    /// terminal as state `i` (`rep[i] == i` when the sequence is
    /// unique). States with equal representatives have *identical*
    /// `prepared` snapshots, so the checker batches recovery per
    /// representative — unless fault widening makes a state's on-disk
    /// image unique again, or `PC_NAIVE_BATCH=1` selects the per-state
    /// oracle.
    pub rep: Vec<usize>,
    /// Sharing accounting.
    pub stats: SnapshotStats,
}

/// Storage-level event ids of a persisted set, ascending — the order
/// `ServerStates::apply_events` applies them. Non-storage events are
/// no-ops for materialization and are dropped so they cannot break
/// prefix sharing between states that differ only in upper-layer events.
pub(crate) fn storage_seq(rec: &Recorder, state: &CrashState) -> Vec<EventId> {
    let mut ids: Vec<EventId> = state
        .persisted
        .iter()
        .filter(|&id| {
            matches!(
                rec.event(id).payload,
                Payload::Fs { .. } | Payload::Block { .. }
            )
        })
        .collect();
    ids.sort_unstable();
    ids
}

fn apply_one(states: &mut ServerStates, rec: &Recorder, id: EventId) {
    match &rec.event(id).payload {
        Payload::Fs { server, op } => states.server_mut(*server).apply_fs(op),
        Payload::Block { server, op } => states.server_mut(*server).apply_block(op),
        _ => {}
    }
}

/// One node of the prefix tree: outgoing edges (storage event → child)
/// in insertion order, plus the crash states whose sequence ends here.
#[derive(Default)]
struct TrieNode {
    children: Vec<(EventId, usize)>,
    terminals: Vec<usize>,
}

/// Materialize every crash state as a COW fork off the shared prefix
/// tree. See the module docs for the algorithm and the equivalence
/// argument.
pub fn prepare_states(
    rec: &Recorder,
    baseline: &ServerStates,
    states: &[CrashState],
) -> SnapshotPlan {
    let _span = pc_rt::obs::span_cat("snapshot.materialize", "snapshot");
    let mut stats = SnapshotStats::default();
    // States whose storage-event sequence lands on an already-terminal
    // trie node share a fully-materialized snapshot with an earlier
    // state; `rep` records that earlier state so the checker can batch
    // per-snapshot work (the count is telemetry only — not part of the
    // equivalence-checked [`SnapshotStats`]).
    let mut states_shared = 0u64;
    let mut rep: Vec<usize> = (0..states.len()).collect();

    // Build the prefix tree of the storage-event sequences. Node count
    // is the number of distinct prefixes, i.e. exactly the replay work.
    let mut nodes: Vec<TrieNode> = vec![TrieNode::default()];
    for (idx, state) in states.iter().enumerate() {
        let seq = storage_seq(rec, state);
        stats.naive_ops += seq.len();
        let mut cur = 0usize;
        for id in seq {
            cur = match nodes[cur].children.iter().find(|&&(e, _)| e == id) {
                Some(&(_, child)) => child,
                None => {
                    nodes.push(TrieNode::default());
                    let child = nodes.len() - 1;
                    nodes[cur].children.push((id, child));
                    child
                }
            };
        }
        if let Some(&first) = nodes[cur].terminals.first() {
            states_shared += 1;
            rep[idx] = first;
        }
        nodes[cur].terminals.push(idx);
    }

    // DFS, threading one working snapshot down each chain: an op is
    // applied once per tree edge, and forks happen only at terminals and
    // at nodes with more than one child — both linear in the tree size.
    let mut prepared: Vec<Option<ServerStates>> = states.iter().map(|_| None).collect();
    let mut stack: Vec<(usize, ServerStates)> = vec![(0, baseline.fork())];
    stats.forks += 1;
    while let Some((n, state)) = stack.pop() {
        for &t in &nodes[n].terminals {
            prepared[t] = Some(state.fork());
            stats.forks += 1;
        }
        let kids: Vec<(EventId, usize)> = nodes[n].children.clone();
        // All but the first child fork the snapshot; the first inherits
        // it, so pure chains (the common case) never copy anything.
        for &(id, child) in kids.iter().skip(1) {
            let mut st = state.fork();
            stats.forks += 1;
            apply_one(&mut st, rec, id);
            stats.ops_replayed += 1;
            stack.push((child, st));
        }
        if let Some(&(id, child)) = kids.first() {
            let mut st = state;
            apply_one(&mut st, rec, id);
            stats.ops_replayed += 1;
            stack.push((child, st));
        }
    }
    pc_rt::obs::count("snapshot.states", states.len() as u64);
    pc_rt::obs::count("snapshot.states_shared", states_shared);
    pc_rt::obs::count("snapshot.forks", stats.forks as u64);
    pc_rt::obs::count("snapshot.ops_replayed", stats.ops_replayed as u64);
    pc_rt::obs::count("snapshot.naive_ops", stats.naive_ops as u64);
    SnapshotPlan {
        prepared: prepared
            .into_iter()
            .map(|s| s.expect("every state visited"))
            .collect(),
        rep,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::{FsOp, JournalMode};
    use tracer::{BitSet, Layer, Process};

    fn creat(path: &str) -> FsOp {
        FsOp::Creat { path: path.into() }
    }

    /// A trace of n single-server creats; crash states are arbitrary
    /// persisted subsets.
    fn fixture(n: usize) -> (Recorder, Vec<EventId>) {
        let mut rec = Recorder::new();
        let ids = (0..n)
            .map(|i| {
                rec.record(
                    Layer::LocalFs,
                    Process::Server(0),
                    Payload::Fs {
                        server: 0,
                        op: creat(&format!("/f{i}")),
                    },
                    None,
                )
            })
            .collect();
        (rec, ids)
    }

    fn state_of(rec: &Recorder, ids: &[EventId]) -> CrashState {
        CrashState {
            cut: BitSet::from_iter(rec.len(), ids.iter().copied()),
            victims: vec![],
            persisted: BitSet::from_iter(rec.len(), ids.iter().copied()),
        }
    }

    #[test]
    fn prepared_states_match_naive_materialization() {
        let (rec, e) = fixture(4);
        let baseline = ServerStates::all_fs(1, JournalMode::Data);
        let subsets: Vec<Vec<EventId>> = vec![
            vec![e[0], e[1], e[2]],
            vec![e[0], e[1], e[3]],
            vec![e[0], e[2]],
            vec![],
            vec![e[0], e[1], e[2]], // duplicate sequence
        ];
        let states: Vec<CrashState> = subsets.iter().map(|s| state_of(&rec, s)).collect();
        let plan = prepare_states(&rec, &baseline, &states);
        assert_eq!(plan.prepared.len(), states.len());
        for (i, subset) in subsets.iter().enumerate() {
            let mut naive = baseline.deep_clone();
            naive.apply_events(&rec, subset.iter().copied());
            assert_eq!(plan.prepared[i], naive, "state {i}");
        }
        // State 4 duplicates state 0's sequence; everyone else is unique.
        assert_eq!(plan.rep, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn sharing_replays_only_the_prefix_tree() {
        let (rec, e) = fixture(4);
        let baseline = ServerStates::all_fs(1, JournalMode::Data);
        // Sequences 012, 013, 02: tree nodes = 0,1,2,3,2' = 5 events,
        // naive = 3 + 3 + 2 = 8.
        let subsets = [
            vec![e[0], e[1], e[2]],
            vec![e[0], e[1], e[3]],
            vec![e[0], e[2]],
        ];
        let states: Vec<CrashState> = subsets.iter().map(|s| state_of(&rec, s)).collect();
        let plan = prepare_states(&rec, &baseline, &states);
        assert_eq!(plan.stats.naive_ops, 8);
        assert_eq!(plan.stats.ops_replayed, 5);
    }

    #[test]
    fn naive_snapshots_reads_env() {
        // Only asserts the parse contract on the current env value; the
        // equivalence suite exercises the actual toggle.
        let on = std::env::var("PC_NAIVE_SNAPSHOTS")
            .map(|v| v == "1")
            .unwrap_or(false);
        assert_eq!(naive_snapshots(), on);
    }
}
