//! Property tests for the fuzzer's generator primitives
//! (`paracrash::fuzz`), on the vendored `pc_rt::proptest` harness.
//!
//! The pinned properties are the ones the CI crash gate's soundness
//! rests on:
//!
//! * [`bounded_sequences`] is **exhaustive** and **duplicate-free** —
//!   it agrees exactly with a brute-force reference that materializes
//!   `|vocab|^len` candidates and filters;
//! * pruning never drops a valid sequence (validity is prefix-monotone
//!   by construction of the reference filter);
//! * [`sample_indices`] is deterministic, sorted, in-range and
//!   duplicate-free for every `(n, k, seed)`.

use paracrash::{bounded_sequences, sample_indices};
use pc_rt::proptest::{self, Config};

/// Brute-force reference: all sequences of length `1..=bound` whose
/// every prefix satisfies `valid`, by materializing the full product.
fn reference_enum(vocab: &[u8], bound: usize, valid: &dyn Fn(&[u8]) -> bool) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = Vec::new();
    let mut frontier: Vec<Vec<u8>> = vec![Vec::new()];
    for _ in 0..bound {
        let mut next = Vec::new();
        for seq in &frontier {
            for &v in vocab {
                let mut s = seq.clone();
                s.push(v);
                if valid(&s) {
                    next.push(s);
                }
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

#[test]
fn enumeration_matches_brute_force_reference() {
    proptest::run(
        "bounded_sequences == reference",
        &Config::with_cases(64),
        |rng, size| {
            // Vocabulary of 1..=5 distinct symbols, bound 1..=3, and a
            // random prefix-monotone validity: forbid one (symbol,
            // depth) pair — once a sequence hits it, all extensions
            // stay invalid in the reference via prefix re-checking.
            let n = 1 + (rng.gen_index(5.min(size.max(1))));
            let vocab: Vec<u8> = (0..n as u8).collect();
            let bound = 1 + rng.gen_index(3);
            let banned_sym = rng.gen_index(n) as u8;
            let banned_depth = rng.gen_index(3);
            (vocab, bound, banned_sym, banned_depth)
        },
        |(vocab, bound, banned_sym, banned_depth)| {
            let valid = |s: &[u8]| {
                !s.iter()
                    .enumerate()
                    .any(|(d, &v)| v == *banned_sym && d == *banned_depth)
            };
            let fast = bounded_sequences(vocab, *bound, |s| valid(s));
            // Duplicate-freedom first (set equality below would mask
            // a duplicate in `fast`).
            let set: std::collections::BTreeSet<_> = fast.iter().collect();
            pc_rt::prop_assert_eq!(set.len(), fast.len());
            // Exhaustiveness: same *set* as the reference (the orders
            // differ by construction — DFS radix vs BFS by length).
            let mut fast_sorted = fast.clone();
            fast_sorted.sort();
            let mut slow = reference_enum(vocab, *bound, &valid);
            slow.sort();
            pc_rt::prop_assert_eq!(&fast_sorted, &slow);
            Ok(())
        },
    );
}

#[test]
fn unconstrained_enumeration_has_closed_form_count() {
    proptest::run(
        "sum of |vocab|^len",
        &Config::with_cases(32),
        |rng, _| (1 + rng.gen_index(4), 1 + rng.gen_index(3)),
        |(n, bound)| {
            let vocab: Vec<u8> = (0..*n as u8).collect();
            let got = bounded_sequences(&vocab, *bound, |_| true).len();
            let want: usize = (1..=*bound).map(|l| n.pow(l as u32)).sum();
            pc_rt::prop_assert_eq!(got, want);
            Ok(())
        },
    );
}

#[test]
fn sampling_is_deterministic_sorted_and_in_range() {
    proptest::run(
        "sample_indices invariants",
        &Config::with_cases(128),
        |rng, size| {
            let n = rng.gen_index(size.max(1) * 8);
            let k = rng.gen_index(n + 2);
            let seed = rng.gen_range(0..u64::MAX);
            (n, k, seed)
        },
        |(n, k, seed)| {
            let a = sample_indices(*n, *k, *seed);
            let b = sample_indices(*n, *k, *seed);
            pc_rt::prop_assert_eq!(&a, &b);
            pc_rt::prop_assert_eq!(a.len(), (*k).min(*n));
            pc_rt::prop_assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free");
            pc_rt::prop_assert!(a.iter().all(|&i| i < *n), "in range");
            Ok(())
        },
    );
}
