//! Ablation: how the servers' local-FS journaling mode changes the
//! crash-state space and the bugs found (Algorithm 2's branches).
//!
//! The paper evaluates with ext4 in data-journaling mode — the safest —
//! and notes (Figure 2 case ③) that weaker local file systems let even
//! same-server directory operations reorder. This example runs ARVR on
//! BeeGFS with each journaling mode underneath.
//!
//! ```sh
//! cargo run --release --example journaling_modes
//! ```

use paracrash::{check_stack, CheckConfig, Stack, StackFactory};
use pfs::beegfs::BeeGfs;
use pfs::{Pfs, PfsCall, Placement};
use simfs::JournalMode;
use simnet::ClusterTopology;

fn run(mode: JournalMode) -> paracrash::CheckOutcome {
    let make = move || -> Box<dyn Pfs> {
        Box::new(BeeGfs::with_journal(
            ClusterTopology::paper_dedicated_default(),
            Placement::new(),
            2048,
            mode,
        ))
    };
    let mut stack = Stack::new(make());
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/file".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/file".into(),
            offset: 0,
            data: b"old-contents".to_vec(),
        },
    );
    stack.posix(
        0,
        PfsCall::Close {
            path: "/file".into(),
        },
    );
    stack.seal_preamble();
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/tmp".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/tmp".into(),
            offset: 0,
            data: b"new-contents".to_vec(),
        },
    );
    stack.posix(
        0,
        PfsCall::Close {
            path: "/tmp".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Rename {
            src: "/tmp".into(),
            dst: "/file".into(),
        },
    );
    let factory: StackFactory = Box::new(make);
    check_stack(&stack, &factory, &CheckConfig::paper_default())
}

fn main() {
    println!(
        "{:<16} {:>12} {:>14} {:>12}",
        "journal mode", "crash states", "inconsistent", "unique bugs"
    );
    for mode in [
        JournalMode::Data,
        JournalMode::Ordered,
        JournalMode::Writeback,
        JournalMode::None,
    ] {
        let outcome = run(mode);
        println!(
            "{:<16} {:>12} {:>14} {:>12}",
            mode.as_str(),
            outcome.stats.states_total,
            outcome.raw_inconsistent_states,
            outcome.bugs.len()
        );
        for bug in &outcome.bugs {
            println!("                 - {}", bug.signature);
        }
    }
    println!(
        "\nData journaling pins same-server order, so only cross-server reorderings\n\
         survive (the paper's bugs 1 and 2). Weaker modes let metadata and data race\n\
         on a single server too — Figure 2's case ③ without needing Btrfs."
    );
}
