//! Domain scenario: a scientific-simulation output workflow over HDF5 —
//! create a results dataset, grow it as the simulation advances — and
//! what a crash can do to it at each step.
//!
//! Also demonstrates the `h5inspect` object map (the semantic input to
//! ParaCrash's pruning) and the baseline-vs-causal model split of §6.3.2.
//!
//! ```sh
//! cargo run --release --example hdf5_workflow
//! ```

use paracrash::{check_stack, CheckConfig, LayerVerdict, Model};
use workloads::{FsKind, Params, Program};

fn main() {
    let params = Params::quick();
    let fs = FsKind::Lustre; // POSIX-safe — every bug below is cross-layer

    // Inspect the initial file: where does each HDF5 structure live?
    let stack = Program::H5Create.run(fs, &params);
    let view = stack.pfs.client_view(stack.pfs.baseline());
    let bytes = view.read("/file.h5").expect("baseline file");
    println!(
        "h5inspect of the initial file (stripe = {} B):",
        params.stripe
    );
    for obj in h5sim::h5inspect(bytes).expect("valid file") {
        let server = obj.addr / params.stripe % u64::from(params.meta + params.storage);
        println!(
            "  {:<40} @{:>7} len {:>6}  -> stripe on server {}",
            obj.name, obj.addr, obj.len, server
        );
    }

    // Run each workflow step under both I/O-library models.
    println!(
        "\n{:<22} {:>14} {:>14} {:>22}",
        "operation", "baseline bugs", "causal bugs", "blamed layer(s)"
    );
    for program in [
        Program::H5Create,
        Program::H5Resize,
        Program::H5Delete,
        Program::H5Rename,
    ] {
        let factory = fs.factory(&params);
        let stack = program.run(fs, &params);
        let baseline = check_stack(
            &stack,
            &factory,
            &CheckConfig {
                h5_model: Model::Baseline,
                ..CheckConfig::paper_default()
            },
        );
        let causal = check_stack(&stack, &factory, &CheckConfig::paper_default());
        let mut layers: Vec<&str> = causal
            .bugs
            .iter()
            .map(|b| match b.layer {
                LayerVerdict::IoLibBug => "HDF5",
                LayerVerdict::PfsBug => "PFS",
            })
            .collect();
        layers.sort_unstable();
        layers.dedup();
        println!(
            "{:<22} {:>14} {:>14} {:>22}",
            program.name(),
            baseline.bugs.len(),
            causal.bugs.len(),
            layers.join("+")
        );
    }

    println!(
        "\nTakeaway: create/delete break even the weakest (baseline) contract —\n\
         unmodified datasets become unreadable; resize/rename only violate causal\n\
         consistency. The create/resize hazards are the PFS reordering persistence\n\
         under HDF5; delete/rename are HDF5's own flush order (§6.3)."
    );
}
