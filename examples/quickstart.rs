//! Quickstart: test one program on one parallel file system and print
//! the crash-consistency bugs ParaCrash finds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use paracrash::{check_stack, CheckConfig, LayerVerdict};
use workloads::{FsKind, Params, Program};

fn main() {
    // 1. Pick a stack: the atomic-replace-via-rename checkpoint pattern
    //    on a 2 metadata + 2 storage BeeGFS cluster.
    let program = Program::Arvr;
    let fs = FsKind::BeeGfs;
    let params = Params::quick();

    // 2. Run the program: the preamble initializes the storage system,
    //    then the traced test phase records every layer of the stack.
    let stack = program.run(fs, &params);
    println!(
        "traced {} events ({} lowermost storage operations)\n",
        stack.rec.len(),
        stack.rec.lowermost_events().len()
    );

    // 3. Check every reachable crash state against the legal golden
    //    states of the causal crash-consistency model.
    let factory = fs.factory(&params);
    let outcome = check_stack(&stack, &factory, &CheckConfig::paper_default());

    println!(
        "explored {} crash states ({} checked, {} pruned) in {:.2}s wall",
        outcome.stats.states_total,
        outcome.stats.states_checked,
        outcome.stats.states_pruned,
        outcome.stats.wall_seconds
    );
    println!(
        "inconsistent crash states: {}\n",
        outcome.raw_inconsistent_states
    );

    // 4. Read the report: two bugs, both the paper's.
    for bug in &outcome.bugs {
        let layer = match bug.layer {
            LayerVerdict::PfsBug => "PFS",
            LayerVerdict::IoLibBug => "I/O library",
        };
        println!("[{layer}] {}", bug.signature);
        println!(
            "   violates {} crash consistency",
            bug.violated_model.as_str()
        );
        println!("   witness operations:");
        for w in &bug.witness {
            println!("     - {w}");
        }
    }
}
