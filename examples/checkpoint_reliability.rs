//! Domain scenario: is the classic checkpoint-replace pattern safe on
//! your parallel file system — and does adding `fsync` fix it?
//!
//! Checkpointing libraries (the paper cites DMTCP and CRIU) replace the
//! latest checkpoint with `write tmp; rename tmp -> ckpt` so the newest
//! checkpoint always has the same name. This example runs that pattern
//! across all five PFS models, then repeats it with an `fsync` before
//! the rename — the mitigation §2.3 describes (at its performance cost).
//!
//! ```sh
//! cargo run --release --example checkpoint_reliability
//! ```

use paracrash::{check_stack, CheckConfig, Stack};
use pfs::PfsCall;
use workloads::{FsKind, Params};

fn run_checkpoint(fs: FsKind, params: &Params, with_fsync: bool) -> paracrash::CheckOutcome {
    let mut stack = Stack::new(fs.build(params));
    // Preamble: an existing checkpoint.
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/ckpt".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/ckpt".into(),
            offset: 0,
            data: b"checkpoint-generation-1".to_vec(),
        },
    );
    stack.posix(
        0,
        PfsCall::Close {
            path: "/ckpt".into(),
        },
    );
    stack.seal_preamble();
    // Test: write the next generation and atomically replace.
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/ckpt.tmp".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/ckpt.tmp".into(),
            offset: 0,
            data: b"checkpoint-generation-2".to_vec(),
        },
    );
    if with_fsync {
        stack.posix(
            0,
            PfsCall::Fsync {
                path: "/ckpt.tmp".into(),
            },
        );
    }
    stack.posix(
        0,
        PfsCall::Close {
            path: "/ckpt.tmp".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Rename {
            src: "/ckpt.tmp".into(),
            dst: "/ckpt".into(),
        },
    );
    let factory = fs.factory(params);
    check_stack(&stack, &factory, &CheckConfig::paper_default())
}

fn main() {
    let params = Params::quick();
    println!(
        "{:<12} {:>18} {:>18}",
        "PFS", "bugs (no fsync)", "bugs (with fsync)"
    );
    for fs in FsKind::all() {
        let plain = run_checkpoint(fs, &params, false);
        let synced = run_checkpoint(fs, &params, true);
        println!(
            "{:<12} {:>18} {:>18}",
            fs.name(),
            plain.bugs.len(),
            synced.bugs.len()
        );
        for bug in &plain.bugs {
            let fixed = !synced.bugs.iter().any(|b| b.signature == bug.signature);
            println!(
                "             - {} {}",
                bug.signature,
                if fixed {
                    "(fixed by fsync)"
                } else {
                    "(NOT fixed by fsync)"
                }
            );
        }
    }
    println!(
        "\nTakeaway: fsync pins the checkpoint data before the rename (bug 1), but the\n\
         metadata-vs-cleanup reordering (bug 2) needs a transactional rename — the\n\
         application cannot fix it alone, matching §2.3's analysis."
    );
}
