//! Figure 4: end-to-end trace correlation of a parallel HDF5 program.
//!
//! Two MPI ranks collectively write into one HDF5 file on BeeGFS; the
//! example prints the multi-layer trace (I/O library → MPI-IO → PFS
//! client → RPC → server-local POSIX) and queries the causality graph
//! the way ParaCrash's analysis does.
//!
//! ```sh
//! cargo run --release --example trace_analysis
//! ```

use h5sim::{H5File, H5Spec, H5Trace};
use mpiio::MpiIo;
use paracrash::Stack;
use tracer::{CausalityGraph, Layer};
use workloads::{FsKind, Params};

fn main() {
    let params = Params::quick();
    let mut stack = Stack::new(FsKind::BeeGfs.build(&params));
    let ranks = [0u32, 1];

    {
        let mut mpi = MpiIo::new(stack.pfs.as_mut(), &mut stack.rec, &mut stack.calls);
        let mut h5t = H5Trace::new();
        let mut file = H5File::create(&mut mpi, &mut h5t, &ranks, "/example.h5", H5Spec::default());
        file.create_group(&mut mpi, &mut h5t, 0, "results");
        // Collective create with both ranks writing (Figure 4's two
        // clients), then independent writes separated by a barrier.
        file.create_dataset_parallel(&mut mpi, &mut h5t, &ranks, "results", "grid", 16, 16);
        mpi.barrier(&ranks, None);
        stack.h5 = h5t;
    }

    println!("=== end-to-end trace ===");
    print!("{}", stack.rec.render());

    let graph = CausalityGraph::build(&stack.rec);
    println!("\n=== causality analysis ===");
    println!("events: {}", stack.rec.len());
    println!(
        "lowermost storage operations: {}",
        stack.rec.lowermost_events().len()
    );
    for layer in [Layer::IoLib, Layer::MpiIo, Layer::PfsClient, Layer::LocalFs] {
        println!(
            "  {:>12} layer events: {}",
            layer.to_string(),
            stack.rec.layer_events(layer).len()
        );
    }

    // How many of the lowermost operation pairs are concurrent — i.e.
    // free to reorder their persistence across servers?
    let low = stack.rec.lowermost_events();
    let mut concurrent = 0;
    let mut ordered = 0;
    for (i, &a) in low.iter().enumerate() {
        for &b in &low[i + 1..] {
            if graph.concurrent(a, b) {
                concurrent += 1;
            } else {
                ordered += 1;
            }
        }
    }
    println!("\nlowermost op pairs: {ordered} causally ordered, {concurrent} concurrent");
    println!(
        "consistent cuts of the lowermost level: {}",
        graph.consistent_cuts(&low).len()
    );
    println!(
        "\nThe concurrent pairs come from the collective create: rank 1 flushes the\n\
         group's local heap while rank 0 flushes the B-tree and symbol table — the\n\
         concurrency behind Table 3 bug 9."
    );
}
