#![warn(missing_docs)]

//! # paracrash-suite — integration surface of the ParaCrash reproduction
//!
//! This crate ties the workspace together for the repository-level
//! integration tests (`tests/`) and runnable examples (`examples/`). It
//! re-exports the member crates and provides a few one-call helpers that
//! the examples and tests share.

pub use h5sim;
pub use mpiio;
pub use paracrash;
pub use pfs;
pub use simfs;
pub use simnet;
pub use tracer;
pub use workloads;

use paracrash::{check_stack, CheckConfig, CheckOutcome};
use workloads::{FsKind, Params, Program};

/// Run one `(program, file system)` cell at the fast test scale with the
/// paper's checker configuration, merging the program's placement
/// variants (the sensitivity sweep of §6.2).
pub fn check_quick(program: Program, fs: FsKind) -> CheckOutcome {
    check_with(program, fs, &Params::quick(), &CheckConfig::paper_default())
}

/// Run one cell with explicit parameters and configuration.
pub fn check_with(
    program: Program,
    fs: FsKind,
    params: &Params,
    cfg: &CheckConfig,
) -> CheckOutcome {
    let mut merged: Option<CheckOutcome> = None;
    for (_, placement) in program.placements() {
        let cell_params = params.clone().with_placement(placement);
        let stack = program.run(fs, &cell_params);
        let factory = fs.factory(&cell_params);
        let outcome = check_stack(&stack, &factory, cfg);
        merged = Some(match merged {
            None => outcome,
            Some(mut acc) => {
                acc.raw_inconsistent_states += outcome.raw_inconsistent_states;
                acc.h5_bad_pfs_ok_states += outcome.h5_bad_pfs_ok_states;
                acc.stats.states_total += outcome.stats.states_total;
                acc.stats.states_checked += outcome.stats.states_checked;
                acc.stats.states_pruned += outcome.stats.states_pruned;
                acc.stats.states_diagnostic += outcome.stats.states_diagnostic;
                acc.diagnostics.extend(outcome.diagnostics);
                for expl in outcome.explanations {
                    // One bundle per (signature, layer); keep the first
                    // placement's, matching the bug-witness policy.
                    if !acc
                        .explanations
                        .iter()
                        .any(|e| e.signature == expl.signature && e.layer == expl.layer)
                    {
                        acc.explanations.push(expl);
                    }
                }
                for bug in outcome.bugs {
                    if let Some(existing) = acc
                        .bugs
                        .iter_mut()
                        .find(|b| b.signature == bug.signature && b.layer == bug.layer)
                    {
                        existing.occurrences += bug.occurrences;
                    } else {
                        acc.bugs.push(bug);
                    }
                }
                acc
            }
        });
    }
    merged.expect("programs always have a placement")
}

/// All bug signatures of an outcome, rendered.
pub fn signatures(outcome: &CheckOutcome) -> Vec<String> {
    outcome
        .bugs
        .iter()
        .map(|b| b.signature.to_string())
        .collect()
}
